/// \file test_sharded.cpp
/// Cross-card sharded solver: bit-exactness against the CPU reference and
/// the single-card run (classic Jacobi and single-pass gallery programs,
/// row-chunk and temporal strategies, k in {1, 4}, 2..3 cards, uneven
/// splits, checkpoint-style segment resume), verifier cleanliness on every
/// card, link traffic accounting, and the decomposition error cases.

#include <gtest/gtest.h>

#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/core/gallery.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim {
namespace {

core::JacobiProblem small_problem(int iters) {
  core::JacobiProblem p;
  p.width = 64;
  p.height = 30;
  p.iterations = iters;
  p.bc_left = 1.0f;
  p.bc_top = 0.25f;
  return p;
}

std::vector<float> single_card_solution(const core::JacobiProblem& p,
                                        const core::DeviceRunConfig& cfg) {
  auto dev = ttmetal::Device::open({}, {});
  core::DeviceRunConfig c = cfg;
  c.verify = false;
  return core::run_jacobi_on_device(*dev, p, c).solution;
}

TEST(Sharded, JacobiRowChunkEveryIterationExchange) {
  const auto p = small_problem(6);
  core::ShardedRunConfig cfg;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_y = 2;
  cfg.verify = true;
  for (int cards = 2; cards <= 3; ++cards) {
    const auto r = core::run_jacobi_sharded(p, cards, cfg);
    EXPECT_TRUE(r.verified_ok) << cards << " cards";
    EXPECT_EQ(r.cards, cards);
    EXPECT_EQ(r.epochs, 6);
    EXPECT_EQ(r.solution, single_card_solution(p, cfg.run)) << cards << " cards";
    EXPECT_GT(r.link_bytes, 0u);
    // Two directed messages per interior cut per exchange (one fewer
    // exchange than epochs: none after the last).
    EXPECT_EQ(r.link_messages, static_cast<std::uint64_t>(2 * (cards - 1) * 5));
  }
}

TEST(Sharded, JacobiRowChunkDeepHaloK4) {
  const auto p = small_problem(10);  // 2 full epochs + one 2-iteration tail
  core::ShardedRunConfig cfg;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_y = 2;
  cfg.exchange_every = 4;
  cfg.verify = true;
  for (int cards = 2; cards <= 3; ++cards) {
    const auto r = core::run_jacobi_sharded(p, cards, cfg);
    EXPECT_TRUE(r.verified_ok) << cards << " cards";
    EXPECT_EQ(r.epochs, 3);
    EXPECT_EQ(r.solution, single_card_solution(p, cfg.run)) << cards << " cards";
  }
}

TEST(Sharded, JacobiTemporalK4) {
  const auto p = small_problem(9);  // two k=4 epochs plus a 1-deep tail
  core::ShardedRunConfig cfg;
  cfg.run.strategy = core::DeviceStrategy::kTemporal;
  cfg.run.cores_y = 2;
  cfg.run.temporal_depth = 4;
  cfg.verify = true;
  for (int cards = 2; cards <= 3; ++cards) {
    const auto r = core::run_jacobi_sharded(p, cards, cfg);
    EXPECT_TRUE(r.verified_ok) << cards << " cards";
    EXPECT_EQ(r.epochs, 3);
    EXPECT_EQ(r.solution, single_card_solution(p, cfg.run)) << cards << " cards";
  }
}

TEST(Sharded, UnevenRowSplitAndWormholeSpec) {
  core::JacobiProblem p = small_problem(5);
  p.height = 29;  // 3 cards -> 10/10/9 owned rows
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 1;
  cfg.exchange_every = 2;
  cfg.verify = true;
  const auto gs = core::run_jacobi_sharded(p, 3, cfg);
  EXPECT_TRUE(gs.verified_ok);

  // The Wormhole family member must produce the same bits (specs change
  // timing, never results).
  const auto wh = core::run_jacobi_sharded(p, 3, cfg, sim::DeviceSpec::wormhole());
  EXPECT_TRUE(wh.verified_ok);
  EXPECT_EQ(wh.solution, gs.solution);
}

TEST(Sharded, SegmentResumeMatchesOneShot) {
  // The serve layer's checkpoint path: two 3-iteration segments through the
  // state in/out parameter must equal one 6-iteration run bit for bit.
  const auto p = small_problem(6);
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 2;
  cfg.exchange_every = 2;

  auto cluster = core::ShardedCluster::open(2);
  const auto devs = cluster.devices();
  std::vector<bfloat16_t> state;
  core::JacobiProblem seg = p;
  seg.iterations = 3;
  core::run_jacobi_sharded(devs, *cluster.fabric, seg, cfg, &state);
  ASSERT_FALSE(state.empty());
  const auto r2 = core::run_jacobi_sharded(devs, *cluster.fabric, seg, cfg, &state);

  const auto one = core::run_jacobi_sharded(p, 2, cfg);
  EXPECT_EQ(r2.solution, one.solution);
  EXPECT_GT(r2.total_time, 0);
}

TEST(Sharded, GalleryHotspotBitExact) {
  // Two-field single-pass program: the read-only power map is staged once
  // and never crosses the fabric; only the written temperature halo does.
  const auto g = core::gallery::hotspot(64, 24, 6);
  const auto ref = cpu::general_reference_bf16(g);
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 2;
  for (const int k : {1, 4}) {
    cfg.exchange_every = k;
    cfg.verify = true;
    const auto r = core::run_general_sharded(g, 2, cfg);
    EXPECT_TRUE(r.verified_ok) << "k=" << k;
    ASSERT_EQ(r.fields.size(), ref.size());
    for (std::size_t f = 0; f < ref.size(); ++f) {
      for (std::size_t i = 0; i < ref[f].size(); ++i) {
        ASSERT_EQ(static_cast<float>(ref[f][i]), r.fields[f][i])
            << "k=" << k << " field " << f << " elem " << i;
      }
    }
  }
}

TEST(Sharded, GalleryLifePostOpBitExact) {
  // Single-field program with the kLife post-op and a seeded initial_field:
  // the global image (not per-slab geometry) carries the seed pattern.
  const auto g = core::gallery::life(64, 27, 5, /*seed=*/42);
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 1;
  cfg.exchange_every = 4;
  cfg.verify = true;
  const auto r = core::run_general_sharded(g, 3, cfg);
  EXPECT_TRUE(r.verified_ok);
}

TEST(Sharded, VerifierCleanOnEveryCard) {
  const auto p = small_problem(5);
  ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto cluster = core::ShardedCluster::open(2, {}, dc);
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 2;
  cfg.exchange_every = 2;
  const auto devs = cluster.devices();
  core::run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
  for (int c = 0; c < 2; ++c) {
    EXPECT_TRUE(cluster.cards[static_cast<std::size_t>(c)]->verifier()->findings().empty())
        << "card " << c;
  }
}

TEST(Sharded, TracedFabricNamesCards) {
  const auto p = small_problem(4);
  sim::ChipLinkConfig link;
  link.enable_trace = true;
  auto cluster = core::ShardedCluster::open(2, {}, {}, link);
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 1;
  const auto devs = cluster.devices();
  core::run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
  auto* sink = cluster.fabric->trace();
  ASSERT_NE(sink, nullptr);
  EXPECT_FALSE(sink->empty());
  ASSERT_GE(sink->track_count(), 2u);
  EXPECT_EQ(sink->track_name(0), "eth/card0->card1");
  EXPECT_EQ(sink->track_name(1), "eth/card1->card0");
}

TEST(Sharded, RejectsInfeasibleDecompositions) {
  core::ShardedRunConfig cfg;
  cfg.run.cores_y = 1;
  // A card owning fewer than k rows.
  core::JacobiProblem tiny = small_problem(8);
  tiny.height = 6;
  cfg.exchange_every = 4;
  EXPECT_THROW(core::run_jacobi_sharded(tiny, 2, cfg), ApiError);
  // Multi-pass gallery programs cannot exchange once per epoch.
  cfg.exchange_every = 1;
  EXPECT_THROW(core::run_general_sharded(core::gallery::fdtd2d(64, 24, 4), 2, cfg),
               ApiError);
  // Unsupported per-card strategy.
  cfg.run.strategy = core::DeviceStrategy::kSramResident;
  EXPECT_THROW(core::run_jacobi_sharded(small_problem(4), 2, cfg), ApiError);
}

}  // namespace
}  // namespace ttsim
