/// \file test_stencil.cpp
/// Tests for the generic weighted-stencil framework (the paper's
/// future-work direction): device runs must replay the BF16 CPU reference
/// bit-exactly for every stencil shape, and the classic numerical
/// properties (stability bounds, conservation-ish behaviour, transport)
/// must hold.

#include "ttsim/core/stencil.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ttsim/cpu/stencil_cpu.hpp"

namespace ttsim::core {
namespace {

void expect_bit_exact(const StencilProblem& p, const DeviceRunResult& r) {
  const auto ref = cpu::stencil_reference_bf16(p);
  ASSERT_EQ(ref.size(), r.solution.size());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (static_cast<float>(ref[i]) != r.solution[i] && ++bad <= 3) {
      ADD_FAILURE() << "mismatch at " << i << ": device " << r.solution[i]
                    << " vs ref " << static_cast<float>(ref[i]);
    }
  }
  EXPECT_EQ(bad, 0u);
}

StencilProblem base_problem(WeightedStencil s, int iters = 6) {
  StencilProblem p;
  p.width = 64;
  p.height = 48;
  p.iterations = iters;
  p.stencil = s;
  p.bc_left = 1.0f;
  p.bc_top = 0.5f;
  p.initial = 0.25f;
  return p;
}

struct NamedStencil {
  const char* name;
  WeightedStencil s;
  friend std::ostream& operator<<(std::ostream& os, const NamedStencil& n) {
    return os << n.name;
  }
};

class StencilSweep : public ::testing::TestWithParam<NamedStencil> {};

TEST_P(StencilSweep, DeviceMatchesReferenceBitExact) {
  const auto p = base_problem(GetParam().s);
  DeviceRunConfig cfg;
  const auto r = run_stencil_on_device(p, cfg);
  expect_bit_exact(p, r);
}

TEST_P(StencilSweep, MultiCoreMatchesReference) {
  const auto p = base_problem(GetParam().s, 4);
  DeviceRunConfig cfg;
  cfg.cores_y = 3;
  cfg.cores_x = 2;
  const auto r = run_stencil_on_device(p, cfg);
  expect_bit_exact(p, r);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StencilSweep,
    ::testing::Values(
        NamedStencil{"jacobi_weights", WeightedStencil::jacobi()},
        NamedStencil{"diffusion", WeightedStencil::diffusion(0.2f)},
        NamedStencil{"advection_x", WeightedStencil::advection_upwind(0.5f, 0.0f)},
        NamedStencil{"advection_xy", WeightedStencil::advection_upwind(0.25f, 0.25f)},
        NamedStencil{"advection_y", WeightedStencil::advection_upwind(0.0f, 0.5f)},
        NamedStencil{"centre_only", WeightedStencil{0.5f, 0, 0, 0, 0}},
        NamedStencil{"asymmetric", WeightedStencil{0.1f, 0.3f, 0.2f, 0.25f, 0.15f}}));

TEST(Stencil, InitialFieldCarriesThroughDevice) {
  StencilProblem p;
  p.width = 32;
  p.height = 32;
  p.iterations = 3;
  p.stencil = WeightedStencil::advection_upwind(0.5f, 0.0f);
  p.initial_field.assign(32 * 32, 0.0f);
  p.initial_field[16 * 32 + 8] = 1.0f;  // a point plume
  DeviceRunConfig cfg;
  const auto r = run_stencil_on_device(p, cfg);
  expect_bit_exact(p, r);
  // The plume moved right (positive x transport), not left.
  float left_mass = 0, right_mass = 0;
  for (std::uint32_t c = 0; c < 8; ++c) left_mass += r.solution[16 * 32 + c];
  for (std::uint32_t c = 9; c < 16; ++c) right_mass += r.solution[16 * 32 + c];
  EXPECT_GT(right_mass, left_mass);
}

TEST(Stencil, StableSchemesStayBounded) {
  // Convex-combination stencils (weights >= 0, sum <= 1) cannot exceed the
  // data range: run long and assert boundedness.
  for (const auto& s : {WeightedStencil::diffusion(0.25f),
                        WeightedStencil::advection_upwind(0.4f, 0.4f)}) {
    StencilProblem p;
    p.width = 32;
    p.height = 32;
    p.iterations = 100;
    p.stencil = s;
    p.bc_left = 1.0f;
    p.initial = 0.5f;
    DeviceRunConfig cfg;
    const auto r = run_stencil_on_device(p, cfg);
    for (float v : r.solution) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Stencil, PureAdvectionTranslatesThePlume) {
  // cx = 1 moves the field exactly one cell right per step.
  StencilProblem p;
  p.width = 64;
  p.height = 16;
  p.iterations = 10;
  p.stencil = WeightedStencil::advection_upwind(1.0f, 0.0f);
  p.initial_field.assign(64 * 16, 0.0f);
  p.initial_field[8 * 64 + 5] = 1.0f;
  DeviceRunConfig cfg;
  const auto r = run_stencil_on_device(p, cfg);
  EXPECT_EQ(r.solution[8 * 64 + 15], 1.0f);  // moved 10 cells right
  EXPECT_EQ(r.solution[8 * 64 + 5], 0.0f);
}

TEST(Stencil, FewerTapsRunFaster) {
  // The device cost scales with active taps: 3-tap advection beats 5-tap
  // diffusion on the same geometry.
  StencilProblem p;
  p.width = 512;
  p.height = 64;
  p.iterations = 4;
  p.stencil = WeightedStencil::diffusion(0.2f);
  DeviceRunConfig cfg;
  const auto five_tap = run_stencil_on_device(p, cfg);
  p.stencil = WeightedStencil::advection_upwind(0.5f, 0.0f);
  const auto three_tap = run_stencil_on_device(p, cfg);
  EXPECT_LT(three_tap.kernel_time, five_tap.kernel_time);
}

TEST(Stencil, JacobiWeightsCloseToDedicatedKernel) {
  // Same maths, different BF16 rounding order: results agree to rounding.
  StencilProblem sp;
  sp.width = 64;
  sp.height = 64;
  sp.iterations = 20;
  sp.stencil = WeightedStencil::jacobi();
  sp.bc_left = 1.0f;
  sp.bc_top = 0.5f;
  sp.bc_bottom = 0.5f;
  const auto generic = run_stencil_on_device(sp, DeviceRunConfig{});
  const auto dedicated = run_jacobi_on_device(sp.geometry(), DeviceRunConfig{});
  double max_diff = 0;
  for (std::size_t i = 0; i < generic.solution.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(
                                      generic.solution[i] - dedicated.solution[i])));
  }
  EXPECT_LT(max_diff, 0.02);
}

TEST(Stencil, InvalidConfigsRejected) {
  StencilProblem p;
  p.width = 64;
  p.height = 64;
  p.stencil = WeightedStencil{};  // all taps zero
  EXPECT_THROW(run_stencil_on_device(p, DeviceRunConfig{}), ApiError);
  p.stencil = WeightedStencil::jacobi();
  p.initial_field.assign(7, 0.0f);  // wrong size
  EXPECT_THROW(run_stencil_on_device(p, DeviceRunConfig{}), CheckError);
}

TEST(StencilCpu, F32AndBf16AgreeWithinRounding) {
  auto p = base_problem(WeightedStencil::diffusion(0.15f), 50);
  const auto f = cpu::stencil_reference_f32(p, 2);
  const auto b = cpu::stencil_reference_bf16(p);
  // 50 iterations of five rounded BF16 products accumulate a few percent of
  // drift on O(1) values — the precision cost the paper acknowledges when
  // comparing BF16 device results against the FP32 CPU.
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], static_cast<float>(b[i]), 0.05f);
  }
}

}  // namespace
}  // namespace ttsim::core
