/// \file test_adaptive.cpp
/// Tests for convergence-driven solving: device-side FPU residuals plus the
/// relaunching host driver.

#include <gtest/gtest.h>

#include <cmath>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"

namespace ttsim::core {
namespace {

JacobiProblem wide_problem(std::uint32_t height, int max_iters) {
  JacobiProblem p;
  p.width = 1024;  // full chunks, required by device-side residuals
  p.height = height;
  p.iterations = max_iters;
  p.bc_left = 1.0f;
  p.bc_right = 0.0f;
  p.bc_top = 0.5f;
  p.bc_bottom = 0.5f;
  return p;
}

TEST(AdaptiveJacobi, ConvergesAndStopsEarly) {
  auto p = wide_problem(16, 10000);
  AdaptiveOptions opt;
  opt.tolerance = 1e-3;
  opt.check_every = 25;
  const auto r = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations_run, p.iterations);
  EXPECT_LE(r.final_residual, opt.tolerance);
  EXPECT_EQ(r.iterations_run % opt.check_every, 0);
}

TEST(AdaptiveJacobi, SolutionMatchesFixedCountRun) {
  auto p = wide_problem(16, 300);
  AdaptiveOptions opt;
  opt.tolerance = 1e-9;  // never met: runs all 300 iterations
  opt.check_every = 60;
  const auto adaptive = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  EXPECT_FALSE(adaptive.converged);
  EXPECT_EQ(adaptive.iterations_run, 300);
  const auto fixed = run_jacobi_on_device(p, DeviceRunConfig{});
  ASSERT_EQ(adaptive.solution.size(), fixed.solution.size());
  for (std::size_t i = 0; i < fixed.solution.size(); ++i) {
    ASSERT_EQ(adaptive.solution[i], fixed.solution[i]) << i;
  }
}

TEST(AdaptiveJacobi, ResidualMatchesHostComputation) {
  // One chunk of N iterations: the device residual must equal the BF16
  // difference between the N-th and (N-1)-th reference sweeps.
  auto p = wide_problem(8, 40);
  AdaptiveOptions opt;
  opt.tolerance = 1e-12;
  opt.check_every = 40;
  const auto r = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  auto ref_n = cpu::jacobi_reference_bf16(p);
  p.iterations = 39;
  auto ref_n1 = cpu::jacobi_reference_bf16(p);
  float host_residual = 0.0f;
  for (std::size_t i = 0; i < ref_n.size(); ++i) {
    // Replay the device arithmetic: BF16 subtract then |.|.
    const bfloat16_t d = ref_n[i] - ref_n1[i];
    host_residual =
        std::max(host_residual, std::fabs(static_cast<float>(d)));
  }
  EXPECT_FLOAT_EQ(static_cast<float>(r.final_residual), host_residual);
}

TEST(AdaptiveJacobi, ResidualDecreasesAcrossChecks) {
  auto p = wide_problem(16, 100);
  AdaptiveOptions opt;
  opt.check_every = 50;
  opt.tolerance = 1e-12;
  const auto r100 = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  p.iterations = 50;
  const auto r50 = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  EXPECT_LT(r100.final_residual, r50.final_residual);
}

TEST(AdaptiveJacobi, MultiCoreResidualIsGlobalMax) {
  auto p = wide_problem(32, 60);
  AdaptiveOptions opt;
  opt.check_every = 60;
  opt.tolerance = 1e-12;
  const auto one = run_jacobi_adaptive(p, opt, DeviceRunConfig{});
  DeviceRunConfig multi;
  multi.cores_y = 4;
  const auto four = run_jacobi_adaptive(p, opt, multi);
  EXPECT_FLOAT_EQ(static_cast<float>(one.final_residual),
                  static_cast<float>(four.final_residual));
}

TEST(AdaptiveJacobi, InvalidConfigsRejected) {
  auto p = wide_problem(16, 100);
  AdaptiveOptions opt;
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kDoubleBuffered;
  EXPECT_THROW(run_jacobi_adaptive(p, opt, cfg), ApiError);

  cfg = DeviceRunConfig{};
  p.width = 512;  // partial chunks would pollute the FPU reduction
  EXPECT_THROW(run_jacobi_adaptive(p, opt, cfg), ApiError);

  p = wide_problem(16, 100);
  opt.check_every = 0;
  EXPECT_THROW(run_jacobi_adaptive(p, opt, DeviceRunConfig{}), ApiError);
}

}  // namespace
}  // namespace ttsim::core
