/// \file test_jacobi_property.cpp
/// Parameterised property tests of the device solvers: for every strategy,
/// decomposition and problem shape in the sweep, the device result must be
/// a bit-exact replay of the BF16 CPU reference, and the solution must obey
/// the mathematical invariants of the Jacobi/Laplace iteration (maximum
/// principle, symmetry, monotone relaxation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"

namespace ttsim::core {
namespace {

struct Case {
  std::uint32_t width, height;
  int iterations;
  DeviceStrategy strategy;
  int cores_x, cores_y;
  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << c.width << "x" << c.height << "/it" << c.iterations << "/"
              << to_string(c.strategy) << "/" << c.cores_x << "x" << c.cores_y;
  }
};

class JacobiSweep : public ::testing::TestWithParam<Case> {};

TEST_P(JacobiSweep, DeviceMatchesBf16ReferenceBitExact) {
  const Case& c = GetParam();
  JacobiProblem p;
  p.width = c.width;
  p.height = c.height;
  p.iterations = c.iterations;
  p.bc_left = 1.0f;
  p.bc_right = 0.25f;
  p.bc_top = 0.75f;
  p.bc_bottom = 0.5f;

  DeviceRunConfig cfg;
  cfg.strategy = c.strategy;
  cfg.cores_x = c.cores_x;
  cfg.cores_y = c.cores_y;
  const auto r = run_jacobi_on_device(p, cfg);
  const auto ref = cpu::jacobi_reference_bf16(p);

  ASSERT_EQ(r.solution.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(r.solution[i], static_cast<float>(ref[i]))
        << "first mismatch at index " << i;
  }

  // Maximum principle: harmonic iterates stay inside the boundary range.
  for (float v : r.solution) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JacobiSweep,
    ::testing::Values(
        // Strategy sweep on a fixed shape.
        Case{64, 64, 5, DeviceStrategy::kInitial, 1, 1},
        Case{64, 64, 5, DeviceStrategy::kWriteOptimised, 1, 1},
        Case{64, 64, 5, DeviceStrategy::kDoubleBuffered, 1, 1},
        Case{64, 64, 5, DeviceStrategy::kRowChunk, 1, 1},
        // Non-square domains, both orientations.
        Case{128, 32, 4, DeviceStrategy::kRowChunk, 1, 1},
        Case{32, 128, 4, DeviceStrategy::kRowChunk, 1, 1},
        Case{128, 32, 4, DeviceStrategy::kDoubleBuffered, 1, 1},
        // Odd iteration counts exercise the buffer-parity logic.
        Case{64, 64, 1, DeviceStrategy::kRowChunk, 1, 1},
        Case{64, 64, 2, DeviceStrategy::kRowChunk, 1, 1},
        Case{64, 64, 7, DeviceStrategy::kRowChunk, 1, 1},
        // Core-grid sweep, including uneven row splits.
        Case{64, 64, 4, DeviceStrategy::kRowChunk, 1, 2},
        Case{64, 64, 4, DeviceStrategy::kRowChunk, 2, 1},
        Case{64, 64, 4, DeviceStrategy::kRowChunk, 2, 2},
        Case{64, 64, 4, DeviceStrategy::kRowChunk, 4, 4},
        Case{64, 96, 4, DeviceStrategy::kRowChunk, 1, 5},
        Case{64, 64, 4, DeviceStrategy::kRowChunk, 1, 64},
        Case{64, 64, 4, DeviceStrategy::kDoubleBuffered, 2, 2},
        // Minimum-size strips: one row per core.
        Case{32, 8, 3, DeviceStrategy::kRowChunk, 1, 8},
        // Wide domain with several chunks per core.
        Case{4096, 16, 3, DeviceStrategy::kRowChunk, 2, 2},
        // SRAM-resident (future work): single core, multi-core, uneven
        // splits, odd iteration parity, single-row strips, wide domains.
        Case{64, 64, 5, DeviceStrategy::kSramResident, 1, 1},
        Case{64, 64, 4, DeviceStrategy::kSramResident, 1, 4},
        Case{64, 64, 6, DeviceStrategy::kSramResident, 1, 7},
        Case{64, 64, 1, DeviceStrategy::kSramResident, 1, 2},
        Case{64, 16, 3, DeviceStrategy::kSramResident, 1, 16},
        Case{2048, 24, 4, DeviceStrategy::kSramResident, 1, 3},
        Case{512, 32, 5, DeviceStrategy::kSramResident, 1, 4}));

/// Relaxation property: with hot boundaries and a cold start, every point's
/// value is non-decreasing across iterations (monotone diffusion inward).
TEST(JacobiInvariants, MonotoneDiffusionFromColdStart) {
  JacobiProblem p;
  p.width = 32;
  p.height = 32;
  p.bc_left = p.bc_right = p.bc_top = p.bc_bottom = 1.0f;
  p.initial = 0.0f;
  std::vector<float> prev(32 * 32, 0.0f);
  for (int iters : {2, 4, 8, 16, 32}) {
    p.iterations = iters;
    DeviceRunConfig cfg;
    const auto r = run_jacobi_on_device(p, cfg);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      EXPECT_GE(r.solution[i], prev[i] - 1e-6f) << "regression at " << i;
    }
    prev = r.solution;
  }
}

/// Mirror symmetry: flipping the left/right boundary conditions must flip
/// the solution left-right (up to exact BF16 arithmetic symmetry).
TEST(JacobiInvariants, LeftRightMirror) {
  JacobiProblem p;
  p.width = 64;
  p.height = 32;
  p.iterations = 30;
  p.bc_left = 1.0f;
  p.bc_right = 0.0f;
  p.bc_top = p.bc_bottom = 0.5f;
  const auto a = run_jacobi_on_device(p, DeviceRunConfig{});
  std::swap(p.bc_left, p.bc_right);
  const auto b = run_jacobi_on_device(p, DeviceRunConfig{});
  for (std::uint32_t r = 0; r < p.height; ++r) {
    for (std::uint32_t c = 0; c < p.width; ++c) {
      // The BF16 sum order breaks exact symmetry only in the last bit;
      // allow one ULP at this magnitude.
      EXPECT_NEAR(a.solution[r * p.width + c],
                  b.solution[r * p.width + (p.width - 1 - c)], 0.004f);
    }
  }
}

/// Determinism: the simulated device gives identical results and identical
/// simulated timings on repeated runs.
TEST(JacobiInvariants, RunsAreDeterministic) {
  JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 5;
  DeviceRunConfig cfg;
  cfg.cores_y = 4;
  const auto a = run_jacobi_on_device(p, cfg);
  const auto b = run_jacobi_on_device(p, cfg);
  EXPECT_EQ(a.kernel_time, b.kernel_time);
  EXPECT_EQ(a.solution, b.solution);
}

/// All strategies converge to the same fixed point (they implement the same
/// arithmetic, so long runs must agree bit-exactly too).
TEST(JacobiInvariants, StrategiesAgreeOnLongRuns) {
  JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 50;
  DeviceRunConfig a;
  a.strategy = DeviceStrategy::kDoubleBuffered;
  DeviceRunConfig b;
  b.strategy = DeviceStrategy::kRowChunk;
  EXPECT_EQ(run_jacobi_on_device(p, a).solution, run_jacobi_on_device(p, b).solution);
}

}  // namespace
}  // namespace ttsim::core
