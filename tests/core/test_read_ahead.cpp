/// \file test_read_ahead.cpp
/// Invariants of the configurable read-ahead pipeline (DeviceRunConfig::
/// read_ahead) and the pipelined DRAM bank service it pairs with:
///  * depth 2 IS the paper's five-slot scheme — explicitly requesting it
///    must be trace-bit-identical to the default configuration (the golden
///    pins in tests/trace/test_golden_trace.cpp then transitively cover it);
///  * deeper pipelines change timing but never data: depths 4 and 8 must
///    replay the BF16 CPU reference bit-exactly, including across column
///    boundaries (the slot-recycle drain) and for the stencil variant;
///  * on the (scaled) Table VIII workload with the pipelined bank service,
///    simulated kernel time is monotonically non-increasing in depth.

#include <gtest/gtest.h>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::core {
namespace {

std::uint64_t traced_hash(const DeviceRunConfig& cfg) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  auto dev = ttmetal::Device::open({}, dc);
  JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 2;
  run_jacobi_on_device(*dev, p, cfg);
  return dev->trace()->hash();
}

TEST(ReadAhead, DepthTwoIsTraceBitIdenticalToDefault) {
  DeviceRunConfig def;
  def.strategy = DeviceStrategy::kRowChunk;
  DeviceRunConfig explicit2 = def;
  explicit2.read_ahead = 2;
  EXPECT_EQ(traced_hash(def), traced_hash(explicit2));
}

TEST(ReadAhead, DeeperDepthChangesScheduleButIsStillDeterministic) {
  DeviceRunConfig deep;
  deep.strategy = DeviceStrategy::kRowChunk;
  deep.read_ahead = 4;
  DeviceRunConfig def;
  def.strategy = DeviceStrategy::kRowChunk;
  EXPECT_NE(traced_hash(def), traced_hash(deep));
  EXPECT_EQ(traced_hash(deep), traced_hash(deep));
}

TEST(ReadAhead, DepthOutOfRangeThrows) {
  JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 1;
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kRowChunk;
  cfg.read_ahead = 1;
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);
  cfg.read_ahead = 65;
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);
}

/// Deep read-ahead with multiple column strips per core: the prologue of
/// column c+1 recycles slots the tail of column c still references, so this
/// is the workload that catches a missing column-boundary drain.
TEST(ReadAhead, DeepDepthsBitExactAcrossColumnBoundaries) {
  JacobiProblem p;
  p.width = 2304;  // 2 cores in X -> 1152-wide strips -> chunk 576, 2 columns
  p.height = 64;
  p.iterations = 3;
  const auto ref = cpu::jacobi_reference_bf16(p);
  for (int depth : {4, 8}) {
    DeviceRunConfig cfg;
    cfg.strategy = DeviceStrategy::kRowChunk;
    cfg.cores_x = 2;
    cfg.read_ahead = depth;
    const auto r = run_jacobi_on_device(p, cfg);
    ASSERT_EQ(ref.size(), r.solution.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (static_cast<float>(ref[i]) != r.solution[i]) ++bad;
    }
    EXPECT_EQ(bad, 0u) << "depth " << depth;
  }
}

TEST(ReadAhead, StencilDeepDepthBitExact) {
  StencilProblem p;
  p.width = 128;
  p.height = 48;
  p.iterations = 4;
  p.stencil = WeightedStencil::diffusion(0.2f);
  p.bc_left = 1.0f;
  p.bc_top = 0.5f;
  p.initial = 0.25f;
  for (int depth : {2, 8}) {
    DeviceRunConfig cfg;
    cfg.read_ahead = depth;
    cfg.verify = true;
    const auto r = run_stencil_on_device(p, cfg);
    EXPECT_TRUE(r.verified_ok) << "depth " << depth;
  }
}

/// The full deep-pipelining configuration (deep read-ahead + pipelined bank
/// service + balanced stripe placement) is still bit-exact, and strictly
/// faster than the paper-faithful configuration on a bank-bound workload.
TEST(ReadAhead, DeepConfigurationBitExactAndFaster) {
  JacobiProblem p;
  p.width = 9216;
  p.height = 128;
  p.iterations = 2;
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kRowChunk;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
  cfg.cores_y = 4;
  cfg.cores_x = 9;
  cfg.verify = true;
  const auto base = run_jacobi_on_device(p, cfg);
  EXPECT_TRUE(base.verified_ok);

  cfg.read_ahead = 8;
  cfg.balanced_stripes = true;
  sim::GrayskullSpec spec;
  spec.dram_bank_pipeline = true;
  const auto deep = run_jacobi_on_device(p, cfg, spec);
  EXPECT_TRUE(deep.verified_ok);
  EXPECT_LT(deep.kernel_time, base.kernel_time);
}

TEST(ReadAhead, KernelTimeMonotoneOnTableVIIIWorkload) {
  // Scaled Table VIII geometry: 9216 wide (contiguous), striped slabs,
  // pipelined bank service, and the paper's full-decomposition strip width
  // (9 cores in X -> 1024-element strips, one chunk column per core — the
  // configuration the deep pipeline targets; narrower multi-column strips
  // trade some of the win back for column-boundary drains). Deeper
  // read-ahead may only help here.
  JacobiProblem p;
  p.width = 9216;
  p.height = 128;
  p.iterations = 2;
  sim::GrayskullSpec spec;
  spec.dram_bank_pipeline = true;
  SimTime prev = 0;
  for (int depth : {2, 4, 8}) {
    DeviceRunConfig cfg;
    cfg.strategy = DeviceStrategy::kRowChunk;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    cfg.cores_y = 2;
    cfg.cores_x = 9;
    cfg.read_ahead = depth;
    const auto r = run_jacobi_on_device(p, cfg, spec);
    if (prev != 0) {
      EXPECT_LE(r.kernel_time, prev) << "depth " << depth << " regressed";
    }
    prev = r.kernel_time;
  }
}

}  // namespace
}  // namespace ttsim::core
