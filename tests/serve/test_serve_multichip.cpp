/// \file test_serve_multichip.cpp
/// Multi-chip serving: heterogeneous device pools (per-card family specs,
/// per-(program, spec) cost history), huge-shape requests admitted as
/// sharded multi-card group sessions, checkpointed sharded segments, and
/// group-level fault recovery that stays bit-exact.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/sim/fault.hpp"

namespace ttsim::serve {
namespace {

/// A family member whose DRAM is far too small for a 256x256 session but
/// holds one 2-card slab comfortably: 2 banks x 96 KiB. Everything else is
/// the calibrated Grayskull, so kernels behave exactly like the paper's.
sim::DeviceSpec tiny_dram_spec() {
  sim::DeviceSpec s;
  s.name = "grayskull-tiny";
  s.dram_banks = 2;
  s.dram_bank_bytes = 96 * KiB;
  return s;
}

/// Too big for one tiny card (2 x 148608 B of grid images vs a 168 KiB
/// budget), small enough for a 2-card slab split.
core::JacobiProblem huge_problem(int iterations = 6) {
  core::JacobiProblem p;
  p.width = 256;
  p.height = 256;
  p.iterations = iterations;
  p.bc_left = 1.0f;
  p.bc_top = 0.25f;
  return p;
}

core::JacobiProblem small_problem() {
  core::JacobiProblem p;
  p.width = 128;
  p.height = 128;
  p.iterations = 3;
  p.bc_left = 1.0f;
  return p;
}

ServiceConfig base_config() {
  ServiceConfig cfg;
  cfg.cards = 2;
  cfg.spec = tiny_dram_spec();
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 1;
  return cfg;
}

void expect_matches_reference(const RequestResult& r,
                              const core::JacobiProblem& p) {
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  const auto ref = cpu::jacobi_reference_bf16(p);
  ASSERT_EQ(r.solution.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(static_cast<float>(ref[i]), r.solution[i]) << "at " << i;
  }
}

TEST(ServeMultichip, HugeShapeAdmitsAsShardedGroupSession) {
  StencilService svc(base_config());
  const auto p = huge_problem();
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  ASSERT_EQ(t.status, RequestStatus::kQueued);
  svc.drain();

  const RequestResult& r = svc.result(t.id);
  expect_matches_reference(r, p);
  EXPECT_EQ(r.group, (std::vector<int>{0, 1}));
  EXPECT_EQ(r.card, 0);  // the group head
  EXPECT_EQ(svc.metrics().sharded_sessions, 1u);
  EXPECT_GE(svc.metrics().sharded_segments, 1u);
  EXPECT_GT(svc.metrics().sharded_link_bytes, 0u);
  // Single-card metrics stay untouched: no batch ran through the pipeline.
  EXPECT_EQ(svc.metrics().batches, 0u);
}

TEST(ServeMultichip, SmallShapeOnTheSamePoolStaysSingleCard) {
  StencilService svc(base_config());
  const auto p = small_problem();
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  expect_matches_reference(r, p);
  EXPECT_TRUE(r.group.empty());
  EXPECT_EQ(svc.metrics().sharded_sessions, 0u);
  EXPECT_EQ(svc.metrics().batches, 1u);
}

TEST(ServeMultichip, ShardedSessionCheckpointsAcrossSegments) {
  // 5 sweeps in segments of 2 (2+2+1): each segment is a fresh group
  // dispatch resumed from the sealed GLOBAL image, and the answer must be
  // identical to the unsegmented solve and the CPU reference.
  ServiceConfig cfg = base_config();
  cfg.checkpoint_every = 2;
  StencilService svc(cfg);
  const auto p = huge_problem(5);
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();

  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.metrics().sharded_sessions, 1u);
  EXPECT_EQ(svc.metrics().sharded_segments, 3u);
  EXPECT_EQ(svc.metrics().checkpoints_taken, 2u);
  EXPECT_GT(svc.metrics().checkpoint_bytes, 0u);
  EXPECT_EQ(svc.result(t.id).retries, 0);
}

TEST(ServeMultichip, OversizedShapeWithNoViableGroupFails) {
  // One tiny card: nothing to shard across, so the request must fail at
  // admission with a capacity error, not wedge the queue.
  ServiceConfig cfg = base_config();
  cfg.cards = 1;
  StencilService svc(cfg);
  Request req;
  req.problem = huge_problem();
  const Ticket t = svc.submit(req);
  EXPECT_EQ(t.status, RequestStatus::kFailed);
  const RequestResult& r = svc.result(t.id);
  EXPECT_EQ(r.status, RequestStatus::kFailed);
  EXPECT_NE(r.error.find("combined capacity"), std::string::npos) << r.error;
  svc.drain();
}

TEST(ServeMultichip, ShardedGeneralGalleryProgramIsBitExact) {
  // The general frontend rides the same group path: a single-pass gallery
  // program too big for one card lands sharded and stays bit-exact against
  // the CPU reference of its primary field. Hotspot carries three grid
  // images per slot (temperature x2 parities + read-only power), so the
  // pool's cards get three banks and the split goes three wide.
  ServiceConfig cfg = base_config();
  cfg.cards = 3;
  cfg.spec.dram_banks = 3;
  cfg.spec.dram_bank_bytes = 80 * KiB;
  StencilService svc(cfg);
  const auto gp = core::gallery::hotspot(256, 256, 5);
  Request req;
  req.general = gp;
  const Ticket t = svc.submit(req);
  svc.drain();

  const RequestResult& r = svc.result(t.id);
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  const auto ref = cpu::general_reference_bf16(gp);
  const auto& primary = ref[static_cast<std::size_t>(gp.primary_field())];
  ASSERT_EQ(r.solution.size(), primary.size());
  for (std::size_t i = 0; i < primary.size(); ++i) {
    ASSERT_EQ(static_cast<float>(primary[i]), r.solution[i]) << "at " << i;
  }
  EXPECT_EQ(svc.metrics().sharded_sessions, 1u);
}

TEST(ServeMultichip, MixedDevicePoolKeysCostPerSpec) {
  // A Grayskull beside a Wormhole: both serve the same program bit-exactly,
  // and the cost model learns separate (program, spec) histories instead of
  // blending two different cards into one meaningless number.
  ServiceConfig cfg;
  cfg.cards = 2;
  cfg.card_specs = {sim::DeviceSpec::grayskull_e150(),
                    sim::DeviceSpec::wormhole()};
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 1;
  StencilService svc(cfg);
  EXPECT_EQ(svc.card_spec(0).name, "grayskull-e150");
  EXPECT_EQ(svc.card_spec(1).name, "wormhole");

  const auto p = small_problem();
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.problem = p;
    tickets.push_back(svc.submit(req));
  }
  svc.drain();

  bool used[2] = {false, false};
  for (const Ticket& t : tickets) {
    const RequestResult& r = svc.result(t.id);
    expect_matches_reference(r, p);
    ASSERT_TRUE(r.card == 0 || r.card == 1);
    used[r.card] = true;
  }
  ASSERT_TRUE(used[0] && used[1]) << "pool did not share the load";

  const SimTime gs = svc.ewma_cost(0, "grayskull-e150");
  const SimTime wh = svc.ewma_cost(0, "wormhole");
  EXPECT_GT(gs, 0u);
  EXPECT_GT(wh, 0u);
  // Different silicon, different cost: the histories must not have been
  // folded into each other (the Wormhole's wider DRAM path is faster).
  EXPECT_NE(gs, wh);
  EXPECT_EQ(svc.ewma_cost(0, "no-such-spec"), 0u);
}

TEST(ServeMultichip, HeterogeneousShardedGroupIsBitExact) {
  // A sharded group drawn from UNLIKE family members: timing differs per
  // slab, the numbers must not.
  auto tiny_wh = sim::DeviceSpec::wormhole();
  tiny_wh.name = "wormhole-tiny";
  tiny_wh.dram_banks = 2;
  tiny_wh.dram_bank_bytes = 96 * KiB;
  ServiceConfig cfg = base_config();
  cfg.card_specs = {tiny_dram_spec(), tiny_wh};
  StencilService svc(cfg);
  const auto p = huge_problem();
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.result(t.id).group, (std::vector<int>{0, 1}));
}

TEST(ServeMultichip, KilledCardOfShardedGroupRecoversBitExact) {
  // The acceptance scenario: one card of a sharded group dies mid-segment.
  // The whole group reopens, the dead card is quarantined (its reopened
  // capacity is short of a slot), and the session resumes from the sealed
  // GLOBAL checkpoint on a fresh group — bit-exact against the fault-free
  // run and the CPU reference.
  auto make_cfg = [](bool with_kill, SimTime kill_at) {
    ServiceConfig cfg;
    cfg.cards = 3;
    cfg.spec = tiny_dram_spec();
    cfg.spec.worker_cores = 8;  // one dead core leaves the card short
    cfg.run.strategy = core::DeviceStrategy::kRowChunk;
    cfg.run.cores_x = 1;
    cfg.run.cores_y = 8;
    cfg.max_batch = 1;
    cfg.checkpoint_every = 4;
    cfg.device.sim_time_limit = 20 * kMillisecond;
    cfg.health.quarantine_after = 1;
    cfg.health.probe_after = 10 * kSecond;  // stays quarantined for the test
    cfg.card_devices.assign(3, cfg.device);
    if (with_kill) {
      sim::FaultConfig fc;
      fc.core_kills.push_back({0, kill_at});
      cfg.card_devices[0].fault_plan = std::make_shared<sim::FaultPlan>(fc);
    }
    return cfg;
  };
  const auto p = huge_problem(12);  // 3 sharded segments of 4
  Request req;
  req.problem = p;

  // The fault-free run pins the reference timeline and solution.
  StencilService clean(make_cfg(false, 0));
  const Ticket tc = clean.submit(req);
  clean.drain();
  const RequestResult& rc = clean.result(tc.id);
  ASSERT_EQ(rc.status, RequestStatus::kCompleted) << rc.error;
  ASSERT_EQ(rc.group, (std::vector<int>{0, 1}));

  StencilService svc(make_cfg(true, rc.completed / 2));
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  expect_matches_reference(r, p);
  ASSERT_EQ(r.solution.size(), rc.solution.size());
  for (std::size_t i = 0; i < r.solution.size(); ++i) {
    ASSERT_EQ(r.solution[i], rc.solution[i]) << "diverged at " << i;
  }
  EXPECT_EQ(r.retries, 1);
  EXPECT_EQ(r.group, (std::vector<int>{1, 2}));  // re-formed past the victim
  EXPECT_GE(r.migrations, 1);
  EXPECT_GE(svc.metrics().card_reopens, 2u);  // the whole group reopened
  EXPECT_GE(svc.metrics().iterations_saved, 4u);  // a checkpoint paid off
  EXPECT_EQ(svc.metrics().quarantines, 1u);
  EXPECT_EQ(svc.card_health(0), CardHealth::kQuarantined);
  EXPECT_EQ(svc.card_health(1), CardHealth::kHealthy);
  EXPECT_EQ(svc.card_health(2), CardHealth::kHealthy);
}

}  // namespace
}  // namespace ttsim::serve
