/// \file test_resilience.cpp
/// Service-level resilience: checkpointed solves and bit-exact migration
/// across a card kill, the card health state machine (degrade, quarantine,
/// probe, readmit, retire), SLO-aware admission, priority load shedding,
/// and deadline accounting under fault-driven requeues.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/sim/fault.hpp"

namespace ttsim::serve {
namespace {

core::JacobiProblem small_problem(float left = 1.0f) {
  core::JacobiProblem p;
  p.width = 128;
  p.height = 128;
  p.iterations = 3;
  p.bc_left = left;
  return p;
}

ServiceConfig base_config() {
  ServiceConfig cfg;
  cfg.cards = 1;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 8;
  return cfg;
}

void expect_matches_reference(const RequestResult& r, const core::JacobiProblem& p) {
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  const auto ref = cpu::jacobi_reference_bf16(p);
  ASSERT_EQ(r.solution.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(static_cast<float>(ref[i]), r.solution[i]) << "at " << i;
  }
}

TEST(ServeResilience, CheckpointedSolveIsBitExact) {
  // 7 sweeps in segments of 2 (2+2+2+1): three host-side checkpoints, four
  // launches, and a result identical to the uncheckpointed solve — the
  // checkpoint is the exact device image, so segmentation must be invisible
  // in the numbers.
  ServiceConfig cfg = base_config();
  cfg.checkpoint_every = 2;
  StencilService svc(cfg);
  auto p = small_problem();
  p.iterations = 7;
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.metrics().batches, 4u);
  EXPECT_EQ(svc.metrics().checkpoints_taken, 3u);
  EXPECT_GT(svc.metrics().checkpoint_bytes, 0u);
  EXPECT_EQ(svc.result(t.id).retries, 0);
}

TEST(ServeResilience, KilledCardMigratesSessionBitExact) {
  // The acceptance scenario: a session checkpointing every 25 sweeps loses
  // its card mid-solve (per-card fault plan kills a core on card 0 only);
  // the service quarantines card 0 and finishes the solve on card 1 from
  // the last checkpoint, bit-exact vs the fault-free run and the CPU
  // reference.
  auto make_cfg = [](bool with_kill, SimTime kill_at) {
    ServiceConfig cfg = base_config();
    cfg.cards = 2;
    cfg.checkpoint_every = 25;
    cfg.device.sim_time_limit = 20 * kMillisecond;
    cfg.health.quarantine_after = 1;
    cfg.health.probe_after = 10 * kSecond;  // stays quarantined for the test
    cfg.card_devices.assign(2, cfg.device);
    if (with_kill) {
      sim::FaultConfig fc;
      fc.core_kills.push_back({0, kill_at});
      cfg.card_devices[0].fault_plan = std::make_shared<sim::FaultPlan>(fc);
    }
    return cfg;
  };
  auto p = small_problem();
  p.iterations = 100;

  // Fault-free run pins the timeline (deterministic) and the reference
  // solution; the kill is placed mid-solve, after checkpoints exist.
  StencilService clean(make_cfg(false, 0));
  Request req;
  req.problem = p;
  const Ticket tc = clean.submit(req);
  clean.drain();
  const RequestResult& rc = clean.result(tc.id);
  ASSERT_EQ(rc.status, RequestStatus::kCompleted) << rc.error;

  StencilService svc(make_cfg(true, rc.completed / 2));
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  expect_matches_reference(r, p);
  ASSERT_EQ(r.solution.size(), rc.solution.size());
  for (std::size_t i = 0; i < r.solution.size(); ++i) {
    ASSERT_EQ(r.solution[i], rc.solution[i]) << "diverged at " << i;
  }
  EXPECT_EQ(r.retries, 1);
  EXPECT_EQ(r.card, 1);  // finished on the surviving card
  EXPECT_GE(svc.metrics().card_reopens, 1u);
  EXPECT_GE(svc.metrics().migrations, 1u);
  EXPECT_GE(svc.metrics().iterations_saved, 25u);  // checkpoint paid off
  EXPECT_EQ(svc.metrics().quarantines, 1u);
  EXPECT_EQ(svc.card_health(0), CardHealth::kQuarantined);
  EXPECT_EQ(svc.card_health(1), CardHealth::kHealthy);
}

void expect_matches_general_reference(const RequestResult& r,
                                      const core::GeneralStencilProblem& p) {
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  const auto ref = cpu::general_reference_bf16(p);
  const auto& primary = ref[static_cast<std::size_t>(p.primary_field())];
  ASSERT_EQ(r.solution.size(), primary.size());
  for (std::size_t i = 0; i < primary.size(); ++i) {
    ASSERT_EQ(static_cast<float>(primary[i]), r.solution[i]) << "at " << i;
  }
}

TEST(ServeResilience, GeneralCheckpointedSolveIsBitExact) {
  // The general-solve segmentation bugfix: gallery solves must honour
  // checkpoint_every exactly like classic Jacobi sessions — 7 FDTD sweeps
  // in segments of 2 run as four launches sealing three multi-field
  // checkpoints (one image per written field), and the delivered primary
  // field is bit-identical to the unsegmented CPU reference.
  ServiceConfig cfg = base_config();
  cfg.checkpoint_every = 2;
  StencilService svc(cfg);
  auto p = core::gallery::fdtd2d(64, 48, 7);
  Request req;
  req.general = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  expect_matches_general_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.metrics().batches, 4u);
  EXPECT_EQ(svc.metrics().checkpoints_taken, 3u);
  EXPECT_GT(svc.metrics().checkpoint_bytes, 0u);
}

TEST(ServeResilience, KilledCardMigratesGeneralSessionBitExact) {
  // The general-solve counterpart of the acceptance scenario above: a
  // gallery FDTD session (three written fields) checkpointing every 25
  // sweeps loses card 0 mid-solve and must finish on card 1 from its
  // per-field checkpoints — bit-exact vs the fault-free run and the CPU
  // reference, with the checkpointed sweeps demonstrably not re-run.
  auto make_cfg = [](bool with_kill, SimTime kill_at) {
    ServiceConfig cfg = base_config();
    cfg.cards = 2;
    cfg.checkpoint_every = 25;
    cfg.device.sim_time_limit = 20 * kMillisecond;
    cfg.health.quarantine_after = 1;
    cfg.health.probe_after = 10 * kSecond;  // stays quarantined for the test
    cfg.card_devices.assign(2, cfg.device);
    if (with_kill) {
      sim::FaultConfig fc;
      fc.core_kills.push_back({0, kill_at});
      cfg.card_devices[0].fault_plan = std::make_shared<sim::FaultPlan>(fc);
    }
    return cfg;
  };
  auto p = core::gallery::fdtd2d(64, 48, 100);

  StencilService clean(make_cfg(false, 0));
  Request req;
  req.general = p;
  const Ticket tc = clean.submit(req);
  clean.drain();
  const RequestResult& rc = clean.result(tc.id);
  ASSERT_EQ(rc.status, RequestStatus::kCompleted) << rc.error;

  StencilService svc(make_cfg(true, rc.completed / 2));
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  expect_matches_general_reference(r, p);
  ASSERT_EQ(r.solution.size(), rc.solution.size());
  for (std::size_t i = 0; i < r.solution.size(); ++i) {
    ASSERT_EQ(r.solution[i], rc.solution[i]) << "diverged at " << i;
  }
  EXPECT_EQ(r.retries, 1);
  EXPECT_EQ(r.card, 1);  // finished on the surviving card
  EXPECT_GE(svc.metrics().card_reopens, 1u);
  EXPECT_GE(svc.metrics().migrations, 1u);
  EXPECT_GE(svc.metrics().iterations_saved, 25u);  // checkpoint paid off
  EXPECT_EQ(svc.card_health(0), CardHealth::kQuarantined);
}

TEST(ServeResilience, MixedProgramAdmissionUsesPerProgramCost) {
  // SLO admission keyed by program hash: a cheap gallery batch and an
  // expensive Jacobi batch warm SEPARATE cost histories, so a deadline
  // feasible at the cheap program's cost admits even though the expensive
  // program's cost (which a pool-wide EWMA would have bled into the
  // estimate) says it is hopeless — and vice versa.
  ServiceConfig cfg = base_config();
  cfg.slo_admission = true;
  StencilService svc(cfg);

  auto cheap = core::gallery::hotspot(64, 48, 2);
  core::JacobiProblem expensive;
  expensive.width = 512;
  expensive.height = 512;
  expensive.iterations = 40;

  // Warm both histories: the expensive batch harvests LAST, so a pool-wide
  // EWMA would be dominated by it at the moment the cheap request arrives.
  Request wc;
  wc.general = cheap;
  const Ticket t1 = svc.submit(wc);
  svc.drain();
  Request we;
  we.problem = expensive;
  we.tenant = 1;
  const Ticket t2 = svc.submit(we);
  svc.drain();
  const SimTime cheap_cost = svc.result(t1.id).latency;
  const SimTime expensive_cost = svc.result(t2.id).latency;
  ASSERT_GT(expensive_cost, 4 * cheap_cost)
      << "workloads must have clearly different costs for this test";

  // A deadline generous for the cheap program, hopeless for the expensive
  // one: between the two costs.
  const SimTime slack = 2 * cheap_cost;
  Request rc;
  rc.general = cheap;
  rc.arrival = svc.now();
  rc.deadline = svc.now() + slack;
  const Ticket ta = svc.submit(rc);
  EXPECT_EQ(ta.status, RequestStatus::kQueued)
      << "cheap request over-rejected: expensive history bled into its cost";
  svc.drain();
  EXPECT_EQ(svc.result(ta.id).status, RequestStatus::kCompleted);
  EXPECT_FALSE(svc.result(ta.id).deadline_missed);

  Request re;
  re.problem = expensive;
  re.tenant = 1;
  re.arrival = svc.now();
  re.deadline = svc.now() + slack;
  const Ticket tb = svc.submit(re);
  EXPECT_EQ(tb.status, RequestStatus::kRejected)
      << "expensive request under-rejected: cheap history hid its real cost";
  EXPECT_EQ(svc.metrics().infeasible_rejects, 1u);
  svc.drain();
}

TEST(ServeResilience, TemporalCheckpointedSolveIsBitExact) {
  // Temporal tiling under segmentation: segments of 3 sweeps at depth 4
  // clamp the chain to each segment's tail (3, 3, then 1), and the
  // end-anchored parity must keep every segment's readback in the canonical
  // buffer — the composed solve stays bit-exact vs the CPU reference.
  ServiceConfig cfg = base_config();
  cfg.checkpoint_every = 3;
  cfg.run.strategy = core::DeviceStrategy::kTemporal;
  cfg.run.temporal_depth = 4;
  StencilService svc(cfg);
  auto p = small_problem();
  p.iterations = 7;
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.metrics().batches, 3u);
  EXPECT_EQ(svc.metrics().checkpoints_taken, 2u);
}

TEST(ServeResilience, FlappingCardIsQuarantinedProbedHealedAndReadmitted) {
  // One card, one transient core kill. The failure quarantines the card;
  // with no other card the scheduler stalls, fast-forwards to the probe,
  // heals the flap (heal_on_probe) and readmits; the solve then completes
  // at full capacity.
  ServiceConfig cfg = base_config();
  cfg.device.sim_time_limit = 20 * kMillisecond;
  sim::FaultConfig fc;
  fc.core_kills.push_back({0, 1 * kMillisecond});
  cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  cfg.health.quarantine_after = 1;
  cfg.health.probe_after = 1 * kMillisecond;
  cfg.health.readmit_successes = 1;
  cfg.health.heal_on_probe = true;
  cfg.max_batch = 64;
  StencilService svc(cfg);
  const int full = svc.card_capacity(0, ShapeKey{});

  auto p = small_problem();
  p.iterations = 100;
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.result(t.id).retries, 1);
  EXPECT_EQ(svc.metrics().quarantines, 1u);
  EXPECT_EQ(svc.metrics().probes, 1u);
  EXPECT_EQ(svc.metrics().readmissions, 1u);
  // The heal restored the killed core: capacity is back to the full pool,
  // and the clean harvest promoted the card out of probation.
  EXPECT_EQ(svc.card_capacity(0, ShapeKey{}), full);
  EXPECT_EQ(svc.card_health(0), CardHealth::kHealthy);
}

TEST(ServeResilience, DeadPoolRetiresCardAndFailsQueue) {
  // Every worker dies and there is no field service: the probe finds zero
  // capacity, retires the card, and the queue fails deterministically
  // instead of drain() spinning forever.
  ServiceConfig cfg = base_config();
  cfg.device.sim_time_limit = 20 * kMillisecond;
  sim::FaultConfig fc;
  for (int core = 0; core < 120; ++core)
    fc.core_kills.push_back({core, 1 * kMillisecond});
  cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  cfg.health.quarantine_after = 1;
  cfg.health.probe_after = 1 * kMillisecond;
  cfg.max_retries = 3;
  StencilService svc(cfg);

  auto p = small_problem();
  p.iterations = 100;
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  EXPECT_EQ(r.status, RequestStatus::kFailed);
  EXPECT_NE(r.error.find("no usable card"), std::string::npos) << r.error;
  EXPECT_EQ(svc.card_health(0), CardHealth::kQuarantined);
  EXPECT_EQ(svc.metrics().probes, 1u);
  EXPECT_EQ(svc.metrics().readmissions, 0u);
}

TEST(ServeResilience, ShedsLowestPriorityNewestForHigherPriorityNewcomer) {
  ServiceConfig cfg = base_config();
  cfg.queue_capacity = 2;
  cfg.shed_low_priority = true;
  StencilService svc(cfg);
  Request req;
  req.problem = small_problem();
  req.tenant = 0;
  const Ticket a = svc.submit(req);  // oldest low-priority
  req.tenant = 1;
  const Ticket b = svc.submit(req);  // newest low-priority: the shed victim
  req.tenant = 2;
  req.priority = 5;
  const Ticket c = svc.submit(req);  // displaces b
  EXPECT_EQ(c.status, RequestStatus::kQueued);
  EXPECT_EQ(svc.result(b.id).status, RequestStatus::kRejected);
  EXPECT_GT(svc.result(b.id).retry_after, 0);
  EXPECT_EQ(svc.metrics().shed, 1u);
  EXPECT_EQ(svc.metrics().tenants.at(1).rejected, 1u);
  // An equal-priority newcomer cannot displace anyone: normal backpressure.
  req.tenant = 3;
  req.priority = 0;
  const Ticket d = svc.submit(req);
  EXPECT_EQ(d.status, RequestStatus::kRejected);
  svc.drain();
  EXPECT_EQ(svc.result(a.id).status, RequestStatus::kCompleted);
  EXPECT_EQ(svc.result(c.id).status, RequestStatus::kCompleted);
}

TEST(ServeResilience, SloAdmissionRejectsInfeasibleDeadlines) {
  ServiceConfig cfg = base_config();
  cfg.slo_admission = true;
  StencilService svc(cfg);
  Request req;
  req.problem = small_problem();
  // No history yet: admitted optimistically even with a deadline.
  const Ticket warm = svc.submit(req);
  EXPECT_EQ(warm.status, RequestStatus::kQueued);
  svc.drain();

  // With history, a deadline one nanosecond out is provably infeasible.
  req.arrival = svc.now();
  req.deadline = svc.now() + 1;
  const Ticket bad = svc.submit(req);
  EXPECT_EQ(bad.status, RequestStatus::kRejected);
  EXPECT_EQ(bad.retry_after, 0) << "infeasible rejects must not hint a retry";
  EXPECT_EQ(svc.metrics().infeasible_rejects, 1u);

  // A generous deadline still admits and completes.
  req.deadline = svc.now() + 1 * kSecond;
  const Ticket ok = svc.submit(req);
  EXPECT_EQ(ok.status, RequestStatus::kQueued);
  svc.drain();
  EXPECT_EQ(svc.result(ok.id).status, RequestStatus::kCompleted);
  EXPECT_FALSE(svc.result(ok.id).deadline_missed);
}

TEST(ServeResilience, FaultRequeueDeadlineExpiryCountsAsMissed) {
  // A victim whose deadline passed while its card was wedged fails — and
  // must be accounted as a deadline miss, not a bare failure.
  ServiceConfig cfg = base_config();
  cfg.device.sim_time_limit = 20 * kMillisecond;
  sim::FaultConfig fc;
  fc.core_kills.push_back({0, 1 * kMillisecond});
  cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  cfg.max_retries = 5;  // budget is not the limiter; the deadline is
  StencilService svc(cfg);
  auto p = small_problem();
  p.iterations = 100;
  Request req;
  req.problem = p;
  // Dispatches at t=0 with time to spare, but the card wedges at the 1 ms
  // core kill — by the time the failure is observed the deadline is gone.
  req.deadline = 1 * kMillisecond;
  const Ticket t = svc.submit(req);
  svc.drain();
  const RequestResult& r = svc.result(t.id);
  EXPECT_EQ(r.status, RequestStatus::kFailed);
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.retries, 0);  // expired victims are not retried
  EXPECT_EQ(svc.metrics().tenants.at(0).deadline_missed, 1u);
  EXPECT_FALSE(r.error.empty());
}

TEST(ServeResilience, TimeoutRequeuesInFlightVictimsInOrder) {
  // Two single-request batches fill the pipeline when the card wedges; both
  // requeue to the front in their original order and complete in it.
  ServiceConfig cfg = base_config();
  cfg.max_batch = 1;
  cfg.device.sim_time_limit = 20 * kMillisecond;
  sim::FaultConfig fc;
  fc.core_kills.push_back({0, 1 * kMillisecond});
  cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  StencilService svc(cfg);
  auto p = small_problem();
  p.iterations = 100;
  Request req;
  req.problem = p;
  req.tenant = 0;
  const Ticket a = svc.submit(req);
  req.tenant = 1;
  const Ticket b = svc.submit(req);
  svc.drain();
  const RequestResult& ra = svc.result(a.id);
  const RequestResult& rb = svc.result(b.id);
  ASSERT_EQ(ra.status, RequestStatus::kCompleted) << ra.error;
  ASSERT_EQ(rb.status, RequestStatus::kCompleted) << rb.error;
  EXPECT_GE(ra.retries, 1);
  EXPECT_GE(rb.retries, 1);
  // Front-in-order requeue preserves the original dispatch order.
  EXPECT_LE(ra.dispatched, rb.dispatched);
  EXPECT_LE(ra.completed, rb.completed);
}

TEST(ServeResilience, ChaoticTimelineIsDeterministic) {
  // The full resilience stack — checkpoints, a quarantine, a heal probe —
  // must still produce a byte-identical span timeline run to run.
  auto run = [] {
    ServiceConfig cfg = base_config();
    cfg.checkpoint_every = 25;
    cfg.device.sim_time_limit = 20 * kMillisecond;
    sim::FaultConfig fc;
    fc.core_kills.push_back({0, 1 * kMillisecond});
    cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
    cfg.health.quarantine_after = 1;
    cfg.health.probe_after = 1 * kMillisecond;
    cfg.health.heal_on_probe = true;
    StencilService svc(cfg);
    for (int tenant = 0; tenant < 3; ++tenant) {
      Request req;
      req.problem = small_problem(0.5f + 0.1f * static_cast<float>(tenant));
      req.problem.iterations = 60;
      req.tenant = tenant;
      svc.submit(req);
    }
    svc.drain();
    return svc.spans().canonical();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ttsim::serve
