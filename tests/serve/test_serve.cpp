/// StencilService: correctness vs the CPU reference, batching, session
/// caching, fairness, backpressure, deadlines, fault degradation and
/// timeline determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/serve/serve.hpp"

namespace ttsim::serve {
namespace {

core::JacobiProblem small_problem(float left = 1.0f) {
  core::JacobiProblem p;
  p.width = 128;
  p.height = 128;
  p.iterations = 3;
  p.bc_left = left;
  return p;
}

ServiceConfig base_config() {
  ServiceConfig cfg;
  cfg.cards = 1;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 8;
  return cfg;
}

void expect_matches_reference(const RequestResult& r, const core::JacobiProblem& p) {
  ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
  const auto ref = cpu::jacobi_reference_bf16(p);
  ASSERT_EQ(r.solution.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(static_cast<float>(ref[i]), r.solution[i]) << "at " << i;
  }
}

TEST(Serve, SingleRequestMatchesCpuReference) {
  StencilService svc(base_config());
  const auto p = small_problem();
  Request req;
  req.problem = p;
  const Ticket t = svc.submit(req);
  ASSERT_EQ(t.status, RequestStatus::kQueued);
  svc.drain();
  expect_matches_reference(svc.result(t.id), p);
  EXPECT_EQ(svc.metrics().batches, 1u);
}

TEST(Serve, SameShapeRequestsBatchWithIndependentData) {
  // Four tenants, same shape, different physics: one launch must carry all
  // four without mixing their data.
  StencilService svc(base_config());
  std::vector<Ticket> tickets;
  std::vector<core::JacobiProblem> problems;
  for (int tenant = 0; tenant < 4; ++tenant) {
    Request req;
    req.problem = small_problem(0.25f * static_cast<float>(tenant + 1));
    req.tenant = tenant;
    problems.push_back(req.problem);
    tickets.push_back(svc.submit(req));
  }
  svc.drain();
  EXPECT_EQ(svc.metrics().batches, 1u);
  EXPECT_EQ(svc.metrics().batched_requests, 4u);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = svc.result(tickets[i].id);
    EXPECT_EQ(r.batch_size, 4);
    expect_matches_reference(r, problems[i]);
  }
}

TEST(Serve, SessionCacheReusedAcrossWaves) {
  StencilService svc(base_config());
  const auto p = small_problem();
  Request req;
  req.problem = p;
  const Ticket a = svc.submit(req);
  svc.drain();
  req.arrival = svc.now();
  const Ticket b = svc.submit(req);
  svc.drain();
  expect_matches_reference(svc.result(a.id), p);
  expect_matches_reference(svc.result(b.id), p);
  EXPECT_EQ(svc.metrics().session_cache_misses, 1u);
  EXPECT_GE(svc.metrics().session_cache_hits, 1u);
}

TEST(Serve, BackpressureRejectsWithRetryAfter) {
  ServiceConfig cfg = base_config();
  cfg.queue_capacity = 2;
  cfg.retry_after = 5 * kMillisecond;
  StencilService svc(cfg);
  Request req;
  req.problem = small_problem();
  const Ticket a = svc.submit(req);
  const Ticket b = svc.submit(req);
  const Ticket c = svc.submit(req);
  EXPECT_EQ(a.status, RequestStatus::kQueued);
  EXPECT_EQ(b.status, RequestStatus::kQueued);
  EXPECT_EQ(c.status, RequestStatus::kRejected);
  EXPECT_EQ(c.retry_after, 5 * kMillisecond);
  EXPECT_EQ(svc.result(c.id).status, RequestStatus::kRejected);
  svc.drain();
  EXPECT_EQ(svc.metrics().tenants.at(0).rejected, 1u);
  EXPECT_EQ(svc.metrics().tenants.at(0).completed, 2u);
}

TEST(Serve, InvalidShapeFailsFast) {
  ServiceConfig cfg = base_config();
  cfg.run.cores_x = 3;  // 128 does not divide by 3
  StencilService svc(cfg);
  Request req;
  req.problem = small_problem();
  const Ticket t = svc.submit(req);
  EXPECT_EQ(t.status, RequestStatus::kFailed);
  EXPECT_FALSE(svc.result(t.id).error.empty());
  svc.drain();  // nothing queued; must return immediately
}

TEST(Serve, FairShareAlternatesTenants) {
  // max_batch 1 forces one request per launch; the round-robin head choice
  // must alternate tenants rather than draining tenant 0 first.
  ServiceConfig cfg = base_config();
  cfg.max_batch = 1;
  StencilService svc(cfg);
  std::vector<Ticket> t0, t1;
  for (int i = 0; i < 2; ++i) {
    Request req;
    req.problem = small_problem();
    req.tenant = 0;
    t0.push_back(svc.submit(req));
    req.tenant = 1;
    t1.push_back(svc.submit(req));
  }
  svc.drain();
  // Dispatch order by simulated dispatch time: 0, 1, 0, 1.
  std::vector<std::pair<SimTime, int>> order;
  for (const auto& t : t0) order.emplace_back(svc.result(t.id).dispatched, 0);
  for (const auto& t : t1) order.emplace_back(svc.result(t.id).dispatched, 1);
  std::sort(order.begin(), order.end());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_NE(order[0].second, order[1].second);
  EXPECT_NE(order[2].second, order[3].second);
}

TEST(Serve, HigherPriorityDispatchesFirst) {
  ServiceConfig cfg = base_config();
  cfg.max_batch = 1;
  StencilService svc(cfg);
  Request low;
  low.problem = small_problem();
  low.tenant = 0;
  low.priority = 0;
  Request high = low;
  high.tenant = 1;
  high.priority = 5;
  const Ticket tl = svc.submit(low);   // submitted first...
  const Ticket th = svc.submit(high);  // ...but lower priority
  svc.drain();
  EXPECT_LE(svc.result(th.id).dispatched, svc.result(tl.id).dispatched);
  const auto& rh = svc.result(th.id);
  const auto& rl = svc.result(tl.id);
  EXPECT_LE(rh.completed, rl.completed);
}

TEST(Serve, DeadlineAccounting) {
  ServiceConfig cfg = base_config();
  cfg.max_batch = 1;
  StencilService svc(cfg);
  Request req;
  req.problem = small_problem();
  // A deadline tighter than one solve: delivered, but flagged missed.
  req.deadline = 1 * kMicrosecond;
  const Ticket soft = svc.submit(req);
  // Two fillers occupy the pipeline so the fourth request dispatches only
  // after the card clock has advanced past its deadline: fails at dispatch.
  req.deadline = 0;
  svc.submit(req);
  svc.submit(req);
  req.deadline = 2 * kMicrosecond;
  const Ticket hard = svc.submit(req);
  svc.drain();
  const auto& rs = svc.result(soft.id);
  EXPECT_EQ(rs.status, RequestStatus::kCompleted);
  EXPECT_TRUE(rs.deadline_missed);
  const auto& rh = svc.result(hard.id);
  EXPECT_EQ(rh.status, RequestStatus::kFailed);
  EXPECT_TRUE(rh.deadline_missed);
  EXPECT_GE(svc.metrics().tenants.at(0).deadline_missed, 2u);
}

TEST(Serve, CoreKillDegradesCardAndServiceRecovers) {
  // A FaultPlan core kill hangs the first launch; the watchdog converts it
  // to a timeout, the service reopens the card (fault plan remembers the
  // dead core), requeues the batch and completes everything.
  ServiceConfig cfg = base_config();
  cfg.device.sim_time_limit = 20 * kMillisecond;
  sim::FaultConfig fc;
  fc.core_kills.push_back({0, 1 * kMillisecond});
  cfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  cfg.max_retries = 2;
  cfg.max_batch = 64;  // uncapped so capacity tracks usable workers
  StencilService svc(cfg);
  const int before = svc.card_capacity(0, ShapeKey{});
  EXPECT_EQ(before, 108 / 4);

  std::vector<Ticket> tickets;
  std::vector<core::JacobiProblem> problems;
  for (int tenant = 0; tenant < 3; ++tenant) {
    Request req;
    req.problem = small_problem(0.5f * static_cast<float>(tenant + 1));
    req.problem.iterations = 100;  // long enough for the kill to land mid-run
    req.tenant = tenant;
    problems.push_back(req.problem);
    tickets.push_back(svc.submit(req));
  }
  svc.drain();
  EXPECT_GE(svc.metrics().card_reopens, 1u);
  // Degradation is local: the dead core shrinks this card's batch width by
  // one slot, and every request still completes bit-exact on the survivors.
  EXPECT_EQ(svc.card_capacity(0, ShapeKey{}), before - 1);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = svc.result(tickets[i].id);
    ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
    EXPECT_GE(r.retries, 1);
    expect_matches_reference(r, problems[i]);
  }
}

TEST(Serve, SpanTimelineIsDeterministic) {
  auto run = [] {
    StencilService svc(base_config());
    for (int tenant = 0; tenant < 3; ++tenant) {
      Request req;
      req.problem = small_problem(0.5f + 0.1f * static_cast<float>(tenant));
      req.tenant = tenant;
      req.arrival = static_cast<SimTime>(tenant) * 100 * kMicrosecond;
      svc.submit(req);
    }
    svc.drain();
    return svc.spans().canonical();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Serve, GalleryWorkloadsServeEndToEnd) {
  // Every gallery workload — hotspot, FDTD-2D, convection, Life — is
  // servable through the shape-keyed sessions; each delivered solution is
  // the primary field of the BF16-exact CPU reference, bit-for-bit.
  StencilService svc(base_config());
  const auto suite = core::gallery::suite(64, 48, 4);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    Request req;
    req.general = suite[i].problem;
    req.tenant = static_cast<int>(i);
    tickets.push_back(svc.submit(req));
    ASSERT_EQ(tickets.back().status, RequestStatus::kQueued) << suite[i].name;
  }
  svc.drain();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& r = svc.result(tickets[i].id);
    ASSERT_EQ(r.status, RequestStatus::kCompleted)
        << suite[i].name << ": " << r.error;
    const auto ref = cpu::general_reference_bf16(suite[i].problem);
    const auto& primary =
        ref[static_cast<std::size_t>(suite[i].problem.primary_field())];
    ASSERT_EQ(r.solution.size(), primary.size()) << suite[i].name;
    for (std::size_t e = 0; e < primary.size(); ++e) {
      ASSERT_EQ(r.solution[e], static_cast<float>(primary[e]))
          << suite[i].name << " elem " << e;
    }
  }
  // Four distinct transition hashes = four sessions, no batching across
  // different programs.
  EXPECT_EQ(svc.metrics().session_cache_misses, 4u);
}

TEST(Serve, SameProgramGalleryRequestsBatch) {
  // Two hotspot requests with different physics share one session (the key
  // hashes the program structure, not the boundary data) and ride one
  // launch, like same-shape Jacobi requests do.
  StencilService svc(base_config());
  auto a = core::gallery::hotspot(64, 48, 4);
  auto b = a;
  b.fields[0].bc_left = 0.75f;  // different physics, same structure
  Request ra, rb;
  ra.general = a;
  rb.general = b;
  rb.tenant = 1;
  const Ticket ta = svc.submit(ra);
  const Ticket tb = svc.submit(rb);
  svc.drain();
  EXPECT_EQ(svc.metrics().batches, 1u);
  EXPECT_EQ(svc.result(ta.id).batch_size, 2);
  for (const auto& [t, p] : {std::pair{ta, a}, std::pair{tb, b}}) {
    const auto& r = svc.result(t.id);
    ASSERT_EQ(r.status, RequestStatus::kCompleted) << r.error;
    const auto ref = cpu::general_reference_bf16(p);
    const auto& primary = ref[static_cast<std::size_t>(p.primary_field())];
    for (std::size_t e = 0; e < primary.size(); ++e) {
      ASSERT_EQ(r.solution[e], static_cast<float>(primary[e])) << "elem " << e;
    }
  }
}

TEST(Serve, TemporalStrategyRequestsServeBitExact) {
  // A per-request kTemporal override runs the k-deep chained kernels and
  // must deliver the same bits as the default row-chunk path; the two
  // strategies compile different programs, so they key separate sessions
  // and never share a batch.
  StencilService svc(base_config());
  const auto p = small_problem();
  Request row;
  row.problem = p;
  Request temporal;
  temporal.problem = p;
  temporal.strategy = core::DeviceStrategy::kTemporal;
  temporal.temporal_depth = 3;
  temporal.tenant = 1;
  const Ticket tr = svc.submit(row);
  const Ticket tt = svc.submit(temporal);
  svc.drain();
  expect_matches_reference(svc.result(tr.id), p);
  expect_matches_reference(svc.result(tt.id), p);
  EXPECT_EQ(svc.metrics().session_cache_misses, 2u);
  EXPECT_EQ(svc.metrics().batches, 2u);
}

TEST(Serve, TemporalServiceDefaultServesJacobiAndGallery) {
  // A pool configured with run.strategy = kTemporal serves classic and
  // general single-pass requests end to end, bit-exact vs the references.
  ServiceConfig cfg = base_config();
  cfg.run.strategy = core::DeviceStrategy::kTemporal;
  cfg.run.temporal_depth = 4;
  StencilService svc(cfg);
  auto p = small_problem();
  p.iterations = 9;  // not a multiple of the depth: exercises the short tail
  Request req;
  req.problem = p;
  const Ticket tj = svc.submit(req);
  Request greq;
  greq.general = core::gallery::hotspot(64, 48, 6);
  greq.tenant = 1;
  const Ticket tg = svc.submit(greq);
  svc.drain();
  expect_matches_reference(svc.result(tj.id), p);
  const auto& rg = svc.result(tg.id);
  ASSERT_EQ(rg.status, RequestStatus::kCompleted) << rg.error;
  const auto ref = cpu::general_reference_bf16(*greq.general);
  const auto& primary =
      ref[static_cast<std::size_t>(greq.general->primary_field())];
  ASSERT_EQ(rg.solution.size(), primary.size());
  for (std::size_t e = 0; e < primary.size(); ++e) {
    ASSERT_EQ(rg.solution[e], static_cast<float>(primary[e])) << "elem " << e;
  }
}

TEST(Serve, TemporalIneligibleRequestFailsFast) {
  // Multi-pass programs cannot chain through SRAM (leapfrog visibility
  // needs every pass's writes each iteration); the override fails at
  // submit, before a card is touched.
  StencilService svc(base_config());
  Request req;
  req.general = core::gallery::fdtd2d(64, 48, 4);
  req.strategy = core::DeviceStrategy::kTemporal;
  req.temporal_depth = 2;
  const Ticket t = svc.submit(req);
  EXPECT_EQ(t.status, RequestStatus::kFailed);
  EXPECT_FALSE(svc.result(t.id).error.empty());
}

TEST(Serve, InvalidGeneralProgramFailsFast) {
  StencilService svc(base_config());
  Request req;
  req.general = core::GeneralStencilProblem{};  // no fields, no passes
  const Ticket t = svc.submit(req);
  EXPECT_EQ(t.status, RequestStatus::kFailed);
  EXPECT_FALSE(svc.result(t.id).error.empty());
}

TEST(Serve, MultiCardPoolSharesLoad) {
  ServiceConfig cfg = base_config();
  cfg.cards = 2;
  cfg.max_batch = 1;
  StencilService svc(cfg);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.problem = small_problem();
    req.tenant = i;
    tickets.push_back(svc.submit(req));
  }
  svc.drain();
  std::vector<int> cards_used;
  for (const auto& t : tickets) cards_used.push_back(svc.result(t.id).card);
  EXPECT_NE(std::count(cards_used.begin(), cards_used.end(), 0), 0);
  EXPECT_NE(std::count(cards_used.begin(), cards_used.end(), 1), 0);
}

}  // namespace
}  // namespace ttsim::serve
