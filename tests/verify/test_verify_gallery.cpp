/// \file test_verify_gallery.cpp
/// A gallery of deliberately broken kernels, one per protocol violation the
/// verifier exists to catch. Each test asserts the *specific* diagnostic —
/// the right Finding::Kind with the right explanation, or a deadlock report
/// naming the actual wait cycle — not just "something was flagged".

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/race.hpp"

namespace ttsim::ttmetal {
namespace {

DeviceConfig verify_config() {
  DeviceConfig dc;
  dc.enable_verify = true;
  return dc;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// 1. Missing read barrier: the producer pushes a CB page whose contents are
/// still in flight from DRAM; the consumer's use of the data is flagged as a
/// read-before-barrier.
TEST(VerifyGallery, MissingReadBarrier) {
  auto dev = Device::open({}, verify_config());
  const std::uint32_t bytes = 2048;
  auto src = dev->create_buffer({.size = bytes});
  auto dst = dev->create_buffer({.size = bytes});

  Program prog;
  const std::vector<int> cores{0};
  prog.create_cb(0, cores, bytes, 1);
  auto reader = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [bytes](DataMoverCtx& ctx) {
        ctx.cb_reserve_back(0, 1);
        ctx.noc_async_read(ctx.get_noc_addr(ctx.arg64(0)), ctx.get_write_ptr(0),
                           bytes);
        // BUG: no noc_async_read_barrier() before publishing the page.
        ctx.cb_push_back(0, 1);
      },
      "leaky_reader");
  auto writer = prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [bytes](DataMoverCtx& ctx) {
        ctx.cb_wait_front(0, 1);
        ctx.noc_async_write(ctx.get_read_ptr(0), ctx.get_noc_addr(ctx.arg64(0)),
                            bytes);
        ctx.noc_async_write_barrier();
        ctx.cb_pop_front(0, 1);
      },
      "writer");
  std::vector<std::uint32_t> rargs, wargs;
  Program::push_arg64(rargs, src->address());
  Program::push_arg64(wargs, dst->address());
  prog.set_runtime_args(reader, 0, rargs);
  prog.set_runtime_args(writer, 0, wargs);
  dev->run_program(prog);

  const auto& fs = dev->verifier()->findings();
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].kind, verify::Finding::Kind::kReadBeforeBarrier);
  EXPECT_TRUE(contains(fs[0].what, "has no completed barrier"))
      << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "leaky_reader")) << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "writer")) << fs[0].what;
}

/// 2. Misaligned DRAM read: the source address breaks the 256-bit rule of
/// Listing 4 (read_data_aligned exists precisely because of this).
TEST(VerifyGallery, MisalignedDramRead) {
  auto dev = Device::open({}, verify_config());
  auto src = dev->create_buffer({.size = 4096});

  Program prog;
  const std::vector<int> cores{0};
  auto l1 = prog.create_l1_buffer(cores, 2048);
  auto k = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [l1_addr = prog.l1_buffer_address(l1)](DataMoverCtx& ctx) {
        // BUG: source offset by 2 bytes from the aligned buffer base.
        ctx.noc_async_read(ctx.get_noc_addr(ctx.arg64(0) + 2), l1_addr, 512);
        ctx.noc_async_read_barrier();
      },
      "misaligned_reader");
  std::vector<std::uint32_t> args;
  Program::push_arg64(args, src->address());
  prog.set_runtime_args(k, 0, args);
  dev->run_program(prog);

  const auto& fs = dev->verifier()->findings();
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].kind, verify::Finding::Kind::kMisalignedDramRead);
  EXPECT_TRUE(contains(fs[0].what, "256-bit DRAM alignment rule"))
      << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "misaligned_reader")) << fs[0].what;
}

/// 3. Unpaired semaphore wait: a kernel waits on a semaphore nothing ever
/// posts. The deadlock diagnoser must name the kernel and the semaphore, not
/// just report "kernel stuck".
TEST(VerifyGallery, UnpairedSemaphoreWait) {
  auto dev = Device::open({}, verify_config());
  Program prog;
  const std::vector<int> cores{0};
  prog.create_semaphore(7, cores, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) { ctx.semaphore_wait(7); }, "lonely_waiter");
  try {
    dev->run_program(prog);
    FAIL() << "deadlocked program completed";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "wait-for diagnosis")) << msg;
    EXPECT_TRUE(contains(msg, "stuck with no possible waker")) << msg;
    EXPECT_TRUE(contains(msg, "lonely_waiter")) << msg;
    EXPECT_TRUE(contains(msg, "semaphore 7")) << msg;
  }
}

/// 4. CB push/pop imbalance: the producer publishes one page, the consumer
/// demands two — it starves forever and the diagnosis says which CB and why.
TEST(VerifyGallery, CbPushPopImbalance) {
  auto dev = Device::open({}, verify_config());
  Program prog;
  const std::vector<int> cores{0};
  prog.create_cb(3, cores, 2048, 2);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) {
        ctx.cb_reserve_back(3, 1);
        ctx.cb_push_back(3, 1);  // BUG: one page, consumer expects two
      },
      "half_producer");
  prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [](DataMoverCtx& ctx) {
        ctx.cb_wait_front(3, 2);
        ctx.cb_pop_front(3, 2);
      },
      "greedy_consumer");
  try {
    dev->run_program(prog);
    FAIL() << "deadlocked program completed";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "wait-for diagnosis")) << msg;
    EXPECT_TRUE(contains(msg, "greedy_consumer")) << msg;
    EXPECT_TRUE(contains(msg, "CB 3 empty")) << msg;
    EXPECT_TRUE(contains(msg, "needs a producer push")) << msg;
  }
}

/// 5. Cross-core barrier-id mismatch: two kernels arrive at *different*
/// barriers, each expecting two participants. Neither rendezvous can ever
/// complete; the diagnosis names both kernels and both barrier ids.
TEST(VerifyGallery, BarrierIdMismatch) {
  auto dev = Device::open({}, verify_config());
  Program prog;
  prog.create_global_barrier(0, 2);
  prog.create_global_barrier(1, 2);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.global_barrier(0); }, "group_a");
  prog.create_kernel(
      KernelKind::kDataMover0, {1},
      [](DataMoverCtx& ctx) { ctx.global_barrier(1); }, "group_b");
  try {
    dev->run_program(prog);
    FAIL() << "deadlocked program completed";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "wait-for diagnosis")) << msg;
    EXPECT_TRUE(contains(msg, "group_a")) << msg;
    EXPECT_TRUE(contains(msg, "group_b")) << msg;
    EXPECT_TRUE(contains(msg, "global barrier 0")) << msg;
    EXPECT_TRUE(contains(msg, "global barrier 1")) << msg;
  }
}

/// Builds the classic two-CB ping-pong where dm1 "forgets" one push: dm0
/// ends up waiting for a page only dm1 can produce while dm1 waits for a
/// page only dm0 can produce — a true wait cycle, visible through the CB
/// registry because both kernels produced and consumed earlier iterations.
void build_pingpong_deadlock(Program& prog) {
  const std::vector<int> cores{0};
  prog.create_cb(0, cores, 2048, 1);
  prog.create_cb(1, cores, 2048, 1);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) {
        for (int it = 0;; ++it) {
          ctx.cb_reserve_back(0, 1);
          ctx.cb_push_back(0, 1);
          ctx.cb_wait_front(1, 1);  // blocks forever once dm1 skips a push
          ctx.cb_pop_front(1, 1);
          if (it >= 8) break;
        }
      },
      "pingpong_a");
  prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [](DataMoverCtx& ctx) {
        for (int it = 0;; ++it) {
          ctx.cb_wait_front(0, 1);  // blocks forever after the skipped push
          ctx.cb_pop_front(0, 1);
          if (it != 5) {  // BUG: iteration 5 consumes without replying
            ctx.cb_reserve_back(1, 1);
            ctx.cb_push_back(1, 1);
          }
          if (it >= 8) break;
        }
      },
      "pingpong_b");
}

/// 6. Two-kernel CB deadlock: the diagnosis reports the actual cycle with
/// both kernels and the CB each is blocked on.
TEST(VerifyGallery, TwoKernelCbDeadlockCycle) {
  auto dev = Device::open({}, verify_config());
  Program prog;
  build_pingpong_deadlock(prog);
  try {
    dev->run_program(prog);
    FAIL() << "deadlocked program completed";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "wait cycle 1 (2 kernels)")) << msg;
    EXPECT_TRUE(contains(msg, "pingpong_a")) << msg;
    EXPECT_TRUE(contains(msg, "pingpong_b")) << msg;
    EXPECT_TRUE(contains(msg, "CB 1 empty")) << msg;
    EXPECT_TRUE(contains(msg, "CB 0 empty")) << msg;
  }
}

/// The same cycle under a watchdog timeout instead of quiescence: a third
/// kernel keeps the engine busy so the deadline fires mid-flight, and
/// DeviceTimeoutError must still carry the wait-cycle report (from registry
/// edges alone — structural guesses are not sound while events are pending).
TEST(VerifyGallery, TimeoutErrorCarriesWaitCycle) {
  DeviceConfig dc = verify_config();
  dc.sim_time_limit = 2 * kMillisecond;
  auto dev = Device::open({}, dc);
  auto scratch = dev->create_buffer({.size = 4096});

  Program prog;
  build_pingpong_deadlock(prog);
  auto spinner = prog.create_kernel(
      KernelKind::kDataMover0, {1},
      [](DataMoverCtx& ctx) {
        for (;;) {  // keeps DRAM events pending until the watchdog fires
          ctx.noc_async_read(ctx.get_noc_addr(ctx.arg64(0)), 0, 1024);
          ctx.noc_async_read_barrier();
        }
      },
      "spinner");
  std::vector<std::uint32_t> args;
  Program::push_arg64(args, scratch->address());
  prog.set_runtime_args(spinner, 1, args);
  try {
    dev->run_program(prog);
    FAIL() << "watchdog did not fire";
  } catch (const DeviceTimeoutError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(contains(msg, "wait cycle 1 (2 kernels)")) << msg;
    EXPECT_TRUE(contains(msg, "pingpong_a")) << msg;
    EXPECT_TRUE(contains(msg, "pingpong_b")) << msg;
  }
}

/// 7. Read-ahead slot recycle (the PR 3 prologue hazard, distilled): a slot
/// is re-targeted by a new noc_async_read while a consumer's reads of the
/// previous landing are not yet ordered behind the issue. This is the exact
/// pattern the continuous slot rotation in jacobi_rowchunk now rules out —
/// the detector must keep catching the pre-fix shape.
TEST(VerifyGallery, ReadAheadSlotRecycle) {
  auto dev = Device::open({}, verify_config());
  const std::uint32_t bytes = 1024;
  auto src = dev->create_buffer({.size = 8192});

  Program prog;
  const std::vector<int> cores{0};
  prog.create_cb(0, cores, bytes, 1);
  auto slot = prog.create_l1_buffer(cores, bytes);
  auto scratch = prog.create_l1_buffer(cores, bytes);
  auto burn = prog.create_l1_buffer(cores, 4096);
  const std::uint32_t slot_addr = prog.l1_buffer_address(slot);
  const std::uint32_t scratch_addr = prog.l1_buffer_address(scratch);
  const std::uint32_t burn_addr = prog.l1_buffer_address(burn);
  const std::uint32_t consumed = 256;  // short copy: finishes within the burn
  auto reader = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [slot_addr, burn_addr, bytes](DataMoverCtx& ctx) {
        const std::uint64_t a = ctx.arg64(0);
        ctx.cb_reserve_back(0, 1);
        ctx.noc_async_read(ctx.get_noc_addr(a), slot_addr, bytes, /*tag=*/0);
        ctx.noc_async_read_barrier(0);
        ctx.cb_push_back(0, 1);  // consumer may now read the slot
        // Burn a long DRAM round trip so the consumer's (short) read
        // definitely executes before the recycle below…
        ctx.noc_async_read(ctx.get_noc_addr(a + 4096), burn_addr, 4096);
        ctx.noc_async_read_barrier();
        // …then BUG: recycle the slot without any flow control proving the
        // consumer is done with it (the pre-fix column-boundary prologue).
        ctx.noc_async_read(ctx.get_noc_addr(a + 2048), slot_addr, bytes,
                           /*tag=*/1);
        ctx.noc_async_read_barrier(1);
      },
      "recycling_reader");
  prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [slot_addr, scratch_addr, consumed](DataMoverCtx& ctx) {
        ctx.cb_wait_front(0, 1);
        ctx.l1_memcpy(scratch_addr, slot_addr, consumed);  // consumes the slot
        ctx.cb_pop_front(0, 1);
      },
      "slot_consumer");
  std::vector<std::uint32_t> args;
  Program::push_arg64(args, src->address());
  prog.set_runtime_args(reader, 0, args);
  dev->run_program(prog);

  const auto& fs = dev->verifier()->findings();
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].kind, verify::Finding::Kind::kInFlightClobber);
  EXPECT_TRUE(contains(fs[0].what, "slot recycled")) << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "recycling_reader")) << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "slot_consumer")) << fs[0].what;
}

/// 8. Conway with a missing halo barrier: the gallery's Life workload splits
/// the grid across cores and ships edge rows into the neighbour's halo slot
/// (noc_async_write_core + noc_semaphore_inc arrival post). The correct cell
/// update waits on the arrival semaphore before tapping the halo row for its
/// neighbour count; this one doesn't. The detector must name both kernels
/// and the unsynchronised landing — and the same program with the wait put
/// back must be clean, proving the diagnostic is about the missing barrier
/// and nothing else.
constexpr int kHaloSem = 3;

void build_conway_halo_program(Program& prog, std::uint64_t stall_dram_addr,
                               bool wait_for_halo) {
  const std::uint32_t row_bytes = 64 * 2;  // one 64-cell BF16 halo row
  const std::vector<int> cores{0, 1};
  prog.create_semaphore(kHaloSem, cores, 0);
  auto halo = prog.create_l1_buffer(cores, row_bytes);
  auto edge = prog.create_l1_buffer(cores, row_bytes);
  auto scratch = prog.create_l1_buffer(cores, row_bytes);
  const std::uint32_t halo_addr = prog.l1_buffer_address(halo);
  const std::uint32_t edge_addr = prog.l1_buffer_address(edge);
  const std::uint32_t scratch_addr = prog.l1_buffer_address(scratch);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [halo_addr, edge_addr, row_bytes](DataMoverCtx& ctx) {
        // Ship this core's bottom interior row into the neighbour's halo
        // slot, then post the arrival semaphore (the sender is correct).
        ctx.noc_async_write_core(1, halo_addr, edge_addr, row_bytes);
        ctx.noc_semaphore_inc(1, kHaloSem);
      },
      "conway_halo_sender");
  prog.create_kernel(
      KernelKind::kDataMover0, {1},
      [halo_addr, scratch_addr, stall_dram_addr, row_bytes,
       wait_for_halo](DataMoverCtx& ctx) {
        // A DRAM round trip stands in for loading the core's own rows — and
        // guarantees the halo landing is recorded before the tap below, so
        // the broken variant exercises the write-then-read direction.
        ctx.noc_async_read(ctx.get_noc_addr(stall_dram_addr), scratch_addr,
                           row_bytes);
        ctx.noc_async_read_barrier();
        if (wait_for_halo) ctx.semaphore_wait(kHaloSem);
        // BUG (when !wait_for_halo): taps the halo row for the neighbour
        // count without waiting on the arrival semaphore.
        ctx.l1_memcpy(scratch_addr, halo_addr, row_bytes);
      },
      "conway_cell_update");
}

TEST(VerifyGallery, ConwayMissingHaloBarrier) {
  auto dev = Device::open({}, verify_config());
  auto stall = dev->create_buffer({.size = 4096});
  Program prog;
  build_conway_halo_program(prog, stall->address(), /*wait_for_halo=*/false);
  dev->run_program(prog);

  const auto& fs = dev->verifier()->findings();
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].kind, verify::Finding::Kind::kDataRace);
  EXPECT_TRUE(contains(fs[0].what, "noc_async_write_core landing"))
      << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "is not ordered before read")) << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "conway_halo_sender")) << fs[0].what;
  EXPECT_TRUE(contains(fs[0].what, "conway_cell_update")) << fs[0].what;
}

TEST(VerifyGallery, ConwayHaloBarrierRestoredIsClean) {
  auto dev = Device::open({}, verify_config());
  auto stall = dev->create_buffer({.size = 4096});
  Program prog;
  build_conway_halo_program(prog, stall->address(), /*wait_for_halo=*/true);
  dev->run_program(prog);
  EXPECT_TRUE(dev->verifier()->findings().empty());
}

}  // namespace
}  // namespace ttsim::ttmetal
