/// \file test_lint.cpp
/// Static linter unit tests: one hand-built ProgramInfo/DeviceInfo scenario
/// per LintError::Code, plus integration through Program::verify_info() /
/// Device::lint_program on real programs (clean program stays clean; a
/// fault-plan-killed core is reported before launch).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "ttsim/sim/fault.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/ttmetal/program.hpp"
#include "ttsim/verify/lint.hpp"

namespace ttsim {
namespace {

using verify::DeviceInfo;
using verify::LintError;
using verify::ProgramInfo;

DeviceInfo small_device() {
  DeviceInfo d;
  d.num_workers = 4;
  d.sram_bytes = 1024 * 1024;
  d.dram_align_bytes = 32;
  return d;
}

/// A minimal well-formed program: dm0 + compute on core 0, so CBs and
/// semaphores placed there have a producer/consumer pair available.
ProgramInfo base_program() {
  ProgramInfo p;
  p.kernels.push_back({/*kind=*/0, {0}, "reader"});
  p.kernels.push_back({/*kind=*/2, {0}, "compute"});
  return p;
}

bool has(const std::vector<LintError>& errors, LintError::Code code) {
  return std::any_of(errors.begin(), errors.end(),
                     [code](const LintError& e) { return e.code == code; });
}

std::string dump(const std::vector<LintError>& errors) {
  return verify::format_lint(errors);
}

TEST(Lint, CleanProgramHasNoFindings) {
  ProgramInfo p = base_program();
  p.cbs.push_back({/*cb_id=*/0, {0}, /*page_size=*/1024, /*num_pages=*/2,
                   /*planned_address=*/0});
  p.semaphores.push_back({/*sem_id=*/0, {0}, /*initial=*/0});
  p.barriers.push_back({/*barrier_id=*/0, /*participants=*/2});
  p.l1_buffers.push_back({{0}, /*size=*/256, /*align=*/32,
                          /*planned_address=*/2048});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(errors.empty()) << dump(errors);
}

TEST(Lint, BadCoreId) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/1, {9}, "off-grid"});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kBadCoreId)) << dump(errors);
  const auto& e = errors.front();
  EXPECT_EQ(e.core, 9);
  EXPECT_NE(e.message.find("off-grid"), std::string::npos) << e.message;
  EXPECT_NE(e.message.find("outside the worker grid"), std::string::npos);
}

TEST(Lint, NegativeCoreIdIsAlsoBad) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/1, {-3}, "negative"});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(has(errors, LintError::Code::kBadCoreId)) << dump(errors);
}

TEST(Lint, DeadCore) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/1, {2}, "doomed"});
  DeviceInfo d = small_device();
  d.failed_cores = {2};
  const auto errors = verify::lint(p, d);
  ASSERT_TRUE(has(errors, LintError::Code::kDeadCore)) << dump(errors);
  EXPECT_NE(errors.front().message.find("fault plan has killed"),
            std::string::npos);
}

TEST(Lint, DuplicateCb) {
  ProgramInfo p = base_program();
  p.cbs.push_back({/*cb_id=*/3, {0}, 1024, 2, 0});
  p.cbs.push_back({/*cb_id=*/3, {0}, 1024, 2, 4096});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kDuplicateCb)) << dump(errors);
}

TEST(Lint, BadCbGeometry) {
  // Zero pages, zero page size, and a page size off the 32 B DRAM granule
  // are each rejected.
  for (const auto& [page_size, num_pages] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0u, 2u}, {1024u, 0u}, {48u, 2u}}) {
    ProgramInfo p = base_program();
    p.cbs.push_back({/*cb_id=*/1, {0}, page_size, num_pages, 0});
    const auto errors = verify::lint(p, small_device());
    EXPECT_TRUE(has(errors, LintError::Code::kBadCbGeometry))
        << page_size << " x " << num_pages << "\n"
        << dump(errors);
  }
}

TEST(Lint, OrphanCb) {
  // CB on core 1, where only a single kernel runs: no producer/consumer
  // pair can exist there.
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/0, {1}, "lonely"});
  p.cbs.push_back({/*cb_id=*/0, {1}, 1024, 2, 0});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kOrphanCb)) << dump(errors);
  EXPECT_NE(errors.front().message.find("producer and a consumer"),
            std::string::npos);
}

TEST(Lint, DuplicateSemaphore) {
  ProgramInfo p = base_program();
  p.semaphores.push_back({/*sem_id=*/5, {0}, 0});
  p.semaphores.push_back({/*sem_id=*/5, {0}, 1});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(has(errors, LintError::Code::kDuplicateSemaphore)) << dump(errors);
}

TEST(Lint, OrphanSemaphore) {
  ProgramInfo p = base_program();
  p.semaphores.push_back({/*sem_id=*/2, {3}, 0});  // no kernel on core 3
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kOrphanSemaphore)) << dump(errors);
  EXPECT_NE(errors.front().message.find("no kernel runs there"),
            std::string::npos);
}

TEST(Lint, DuplicateBarrier) {
  ProgramInfo p = base_program();
  p.barriers.push_back({/*barrier_id=*/0, 2});
  p.barriers.push_back({/*barrier_id=*/0, 1});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(has(errors, LintError::Code::kDuplicateBarrier)) << dump(errors);
}

TEST(Lint, BadBarrierNonPositiveParticipants) {
  ProgramInfo p = base_program();
  p.barriers.push_back({/*barrier_id=*/1, 0});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(has(errors, LintError::Code::kBadBarrier)) << dump(errors);
}

TEST(Lint, BadBarrierMoreParticipantsThanKernels) {
  ProgramInfo p = base_program();  // 2 kernel instances total
  p.barriers.push_back({/*barrier_id=*/1, 3});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kBadBarrier)) << dump(errors);
  EXPECT_NE(errors.front().message.find("can never complete"),
            std::string::npos);
}

TEST(Lint, SramOverflow) {
  ProgramInfo p = base_program();
  p.cbs.push_back({/*cb_id=*/0, {0}, /*page_size=*/512 * 1024,
                   /*num_pages=*/4, /*planned_address=*/0});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kSramOverflow)) << dump(errors);
  EXPECT_NE(errors.front().message.find("core SRAM"), std::string::npos);
}

TEST(Lint, BufferOverlap) {
  ProgramInfo p = base_program();
  p.cbs.push_back({/*cb_id=*/0, {0}, 1024, 2, /*planned_address=*/0});
  p.l1_buffers.push_back({{0}, /*size=*/256, 32, /*planned_address=*/1024});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kBufferOverlap)) << dump(errors);
  EXPECT_NE(errors.front().message.find("overlap on core 0"),
            std::string::npos);
}

TEST(Lint, DuplicateKernel) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/0, {0}, "second-reader"});
  const auto errors = verify::lint(p, small_device());
  ASSERT_TRUE(has(errors, LintError::Code::kDuplicateKernel)) << dump(errors);
  EXPECT_NE(errors.front().message.find("second-reader"), std::string::npos);
  EXPECT_NE(errors.front().message.find("exactly one kernel"),
            std::string::npos);
}

TEST(Lint, EmptyCoreList) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/1, {}, "nowhere"});
  const auto errors = verify::lint(p, small_device());
  EXPECT_TRUE(has(errors, LintError::Code::kEmptyCoreList)) << dump(errors);
}

TEST(Lint, FormatOnePerLineWithCodeSlug) {
  ProgramInfo p = base_program();
  p.kernels.push_back({/*kind=*/1, {9}, "off-grid"});
  p.kernels.push_back({/*kind=*/1, {}, "nowhere"});
  const auto errors = verify::lint(p, small_device());
  const std::string text = verify::format_lint(errors);
  EXPECT_NE(text.find("lint: bad-core-id: "), std::string::npos) << text;
  EXPECT_NE(text.find("lint: empty-core-list: "), std::string::npos) << text;
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            errors.size());
}

TEST(Lint, CodeSlugsAreDistinct) {
  const LintError::Code codes[] = {
      LintError::Code::kBadCoreId,          LintError::Code::kDeadCore,
      LintError::Code::kDuplicateCb,        LintError::Code::kBadCbGeometry,
      LintError::Code::kOrphanCb,           LintError::Code::kDuplicateSemaphore,
      LintError::Code::kOrphanSemaphore,    LintError::Code::kDuplicateBarrier,
      LintError::Code::kBadBarrier,         LintError::Code::kSramOverflow,
      LintError::Code::kBufferOverlap,      LintError::Code::kDuplicateKernel,
      LintError::Code::kEmptyCoreList,      LintError::Code::kCbCreditImbalance,
      LintError::Code::kCbOvercommit,       LintError::Code::kSemImbalance,
      LintError::Code::kSlotReuse,          LintError::Code::kWaitCycle,
  };
  std::vector<std::string> names;
  for (const auto c : codes) names.emplace_back(verify::to_string(c));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// --- integration: real Program + Device snapshots ---

TEST(LintDevice, RealCleanProgramPasses) {
  auto dev = ttmetal::Device::open({}, {});
  ttmetal::Program prog;
  prog.create_cb(0, {0}, 1024, 2);
  prog.create_semaphore(0, {0}, 0);
  prog.create_global_barrier(0, 2);
  prog.create_kernel(ttmetal::KernelKind::kDataMover0, {0},
                     [](ttmetal::DataMoverCtx&) {}, "reader");
  prog.create_kernel({0}, [](ttmetal::ComputeCtx&) {}, "compute");
  const auto errors = dev->lint_program(prog);
  EXPECT_TRUE(errors.empty()) << dump(errors);
}

TEST(LintDevice, KilledCoreIsReportedBeforeLaunch) {
  sim::FaultConfig fc;
  fc.core_kills.push_back({/*core=*/1, /*at=*/0});
  ttmetal::DeviceConfig dc;
  dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  auto dev = ttmetal::Device::open({}, dc);
  ttmetal::Program prog;
  prog.create_kernel(ttmetal::KernelKind::kDataMover0, {1},
                     [](ttmetal::DataMoverCtx&) {}, "doomed");
  const auto errors = dev->lint_program(prog);
  ASSERT_TRUE(has(errors, LintError::Code::kDeadCore)) << dump(errors);
  EXPECT_EQ(errors.front().core, 1);
}

TEST(LintDevice, PlannedAddressesFeedOverlapCheck) {
  // Program's bump-allocator mirror assigns disjoint addresses, so a real
  // program never self-overlaps — the planned addresses must round-trip
  // through verify_info() intact.
  auto dev = ttmetal::Device::open({}, {});
  ttmetal::Program prog;
  prog.create_cb(0, {0, 1}, 2048, 4);
  prog.create_cb(1, {0, 1}, 2048, 4);
  prog.create_l1_buffer({0, 1}, 4096);
  prog.create_kernel(ttmetal::KernelKind::kDataMover0, {0, 1},
                     [](ttmetal::DataMoverCtx&) {}, "reader");
  prog.create_kernel({0, 1}, [](ttmetal::ComputeCtx&) {}, "compute");
  const auto info = prog.verify_info();
  ASSERT_EQ(info.cbs.size(), 2u);
  EXPECT_NE(info.cbs[0].planned_address, info.cbs[1].planned_address);
  const auto errors = dev->lint_program(prog);
  EXPECT_TRUE(errors.empty()) << dump(errors);
}

}  // namespace
}  // namespace ttsim
