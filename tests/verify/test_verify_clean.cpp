/// \file test_verify_clean.cpp
/// Zero-false-positive and neutrality guarantees for the race detector:
///   * every golden workload (all jacobi strategies, multi-core runs, deep
///     read-ahead, the stream benchmark, the fault-delay schedule and the
///     batched serving path) must come back with ZERO findings under
///     DeviceConfig::enable_verify — the detector only speaks when a kernel
///     protocol is actually broken;
///   * switching the detector on must not change results, kernel times or
///     the golden trace stream — every hook is pure host-side bookkeeping.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/race.hpp"

namespace ttsim {
namespace {

std::string render(const std::vector<verify::Finding>& fs) {
  std::ostringstream os;
  for (const auto& f : fs) {
    os << verify::to_string(f.kind) << " core " << f.core << " @0x" << std::hex
       << f.addr << std::dec << "+" << f.size << ": " << f.what << "\n";
  }
  return os.str();
}

core::JacobiProblem golden_problem() {
  core::JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 2;
  return p;
}

std::vector<verify::Finding> jacobi_findings(core::DeviceStrategy strategy,
                                             int cores_y = 1, int read_ahead = 2,
                                             ttmetal::DeviceConfig dc = {}) {
  dc.enable_verify = true;
  auto dev = ttmetal::Device::open({}, dc);
  core::DeviceRunConfig cfg;
  cfg.strategy = strategy;
  cfg.cores_y = cores_y;
  cfg.read_ahead = read_ahead;
  core::run_jacobi_on_device(*dev, golden_problem(), cfg);
  return dev->verifier()->findings();
}

TEST(VerifyClean, JacobiTiled) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kInitial);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(VerifyClean, JacobiWriteOptimised) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kWriteOptimised);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(VerifyClean, JacobiDoubleBuffered) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kDoubleBuffered);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(VerifyClean, JacobiRowChunk) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kRowChunk);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(VerifyClean, JacobiRowChunkMulticore) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kRowChunk, /*cores_y=*/2);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// The column-boundary slot rotation must be race-free at every read-ahead
// depth, not just the paper's N = 2 — this is the regression net for the
// continuous-rotation fix (pre-fix, deeper pipelines relied on a drain and
// N = 2 relied on the DRAM round trip outrunning the recycle).
TEST(VerifyClean, JacobiRowChunkDeepReadAhead) {
  for (const int depth : {3, 4, 6}) {
    const auto fs =
        jacobi_findings(core::DeviceStrategy::kRowChunk, /*cores_y=*/1, depth);
    EXPECT_TRUE(fs.empty()) << "read_ahead=" << depth << "\n" << render(fs);
  }
}

// Same, across real column boundaries: a strip wider than one 1024-element
// chunk makes the reader's prologue rows overlap the previous column's
// in-flight batches — the exact window where an undersized slot rotation
// aliases live rows (happens-before detection is timing-independent, so
// this fires on a bad slot bound even when the simulated schedule happens
// to dodge the corruption). The single-column golden tests above can never
// reach this code path.
TEST(VerifyClean, JacobiRowChunkMultiColumnDeepReadAhead) {
  core::JacobiProblem p;
  p.width = 2048;  // two 1024-element chunk columns per strip
  p.height = 32;
  p.iterations = 2;
  for (const int depth : {2, 3, 8}) {
    ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttmetal::Device::open({}, dc);
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.read_ahead = depth;
    core::run_jacobi_on_device(*dev, p, cfg);
    const auto fs = dev->verifier()->findings();
    EXPECT_TRUE(fs.empty()) << "read_ahead=" << depth << "\n" << render(fs);
  }
}

TEST(VerifyClean, JacobiSramResident) {
  const auto fs = jacobi_findings(core::DeviceStrategy::kSramResident,
                                  /*cores_y=*/2);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

TEST(VerifyClean, StreamInterleavedMulticore) {
  ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto dev = ttmetal::Device::open({}, dc);
  stream::StreamParams p;
  p.rows = 32;
  p.num_cores = 2;
  p.interleave_page = 16 * KiB;
  stream::run_streaming_benchmark(*dev, p);
  const auto& fs = dev->verifier()->findings();
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// Fault-injected delays stretch the schedule but break no protocol: the
// detector reasons about happens-before, not timing, so a delay-only fault
// plan must stay clean.
TEST(VerifyClean, FaultDelaysAreNotRaces) {
  sim::FaultConfig fc;
  fc.seed = 11;
  fc.mover_stall_prob = 0.05;
  fc.noc_delay_prob = 0.05;
  ttmetal::DeviceConfig dc;
  dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  const auto fs =
      jacobi_findings(core::DeviceStrategy::kRowChunk, 1, 2, dc);
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// The batched serving path: several tenants solving in one program on
// disjoint core groups, driven through the scheduler (the loadgen smoke
// configuration scaled to test size).
TEST(VerifyClean, ServeBatchedSmoke) {
  serve::ServiceConfig cfg;
  cfg.cards = 1;
  cfg.device.enable_verify = true;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 8;
  serve::StencilService svc(cfg);
  core::JacobiProblem p;
  p.width = 128;
  p.height = 128;
  p.iterations = 3;
  for (int tenant = 0; tenant < 4; ++tenant) {
    serve::Request req;
    req.problem = p;
    req.problem.bc_left = 0.25f * static_cast<float>(tenant + 1);
    req.tenant = tenant;
    ASSERT_EQ(svc.submit(req).status, serve::RequestStatus::kQueued);
  }
  svc.drain();
  EXPECT_GE(svc.metrics().batches, 1u);
  const auto fs = svc.verify_findings();
  EXPECT_TRUE(fs.empty()) << render(fs);
}

// Every gallery workload — hotspot, FDTD-2D, convection, Life — runs the
// generic-frontend lowering (multi-field CB maps, multi-pass barriers, the
// Life post-op) and must come back with zero findings: the general reader /
// compute / writer protocol is as clean as the hand-written Jacobi one.
TEST(VerifyClean, GalleryWorkloadsAreClean) {
  for (const auto& named : core::gallery::suite()) {
    ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttmetal::Device::open({}, dc);
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = 2;
    cfg.read_ahead = 3;
    core::run_general_stencil_on_device(*dev, named.problem, cfg);
    const auto fs = dev->verifier()->findings();
    EXPECT_TRUE(fs.empty()) << named.name << "\n" << render(fs);
  }
}

// The cross-column run-ahead regime: fewer interior rows per core than the
// read-ahead depth, with multiple chunk columns per strip, lets the reader
// cross several column boundaries inside one reserve window. This is the
// exact configuration where the conformance sweep caught the generalized
// reader recycling live slots (fixed by gating the column prologue behind
// the batch reserve and widening the slot ring) — pinned here so the fix
// cannot regress.
TEST(VerifyClean, GallerySmallRowsDeepReadAhead) {
  const auto p = core::gallery::hotspot(96, 7, 3);
  for (const int depth : {6, 8}) {
    ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttmetal::Device::open({}, dc);
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = 3;      // 3/2/2 interior rows per core — all < depth
    cfg.read_ahead = depth;
    cfg.chunk_elems = 32;  // three chunk columns across the 96-wide strip
    core::run_general_stencil_on_device(*dev, p, cfg);
    const auto fs = dev->verifier()->findings();
    EXPECT_TRUE(fs.empty()) << "read_ahead=" << depth << "\n" << render(fs);
  }
}

// --- neutrality: enable_verify must be observationally invisible ---

struct NeutralRun {
  std::uint64_t trace_hash = 0;
  std::size_t trace_events = 0;
  SimTime kernel_time = 0;
  std::vector<float> solution;
};

NeutralRun neutral_run(core::DeviceStrategy strategy, bool verify_on) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  dc.enable_verify = verify_on;
  auto dev = ttmetal::Device::open({}, dc);
  core::DeviceRunConfig cfg;
  cfg.strategy = strategy;
  cfg.cores_y = 2;
  const auto res = core::run_jacobi_on_device(*dev, golden_problem(), cfg);
  return {dev->trace()->hash(), dev->trace()->size(), res.kernel_time,
          res.solution};
}

NeutralRun general_neutral_run(const core::GeneralStencilProblem& p,
                               bool verify_on) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  dc.enable_verify = verify_on;
  auto dev = ttmetal::Device::open({}, dc);
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_y = 2;
  const auto res = core::run_general_stencil_on_device(*dev, p, cfg);
  NeutralRun out{dev->trace()->hash(), dev->trace()->size(), res.kernel_time, {}};
  for (const auto& field : res.fields) {
    out.solution.insert(out.solution.end(), field.begin(), field.end());
  }
  return out;
}

TEST(VerifyNeutrality, GalleryTraceResultsAndTimingBitIdentical) {
  for (const auto& named : core::gallery::suite()) {
    const NeutralRun off = general_neutral_run(named.problem, false);
    const NeutralRun on = general_neutral_run(named.problem, true);
    EXPECT_EQ(off.trace_hash, on.trace_hash)
        << named.name << ": trace stream changed";
    EXPECT_EQ(off.trace_events, on.trace_events) << named.name;
    EXPECT_EQ(off.kernel_time, on.kernel_time) << named.name;
    ASSERT_EQ(off.solution.size(), on.solution.size()) << named.name;
    for (std::size_t i = 0; i < off.solution.size(); ++i) {
      ASSERT_EQ(off.solution[i], on.solution[i]) << named.name << " at " << i;
    }
  }
}

TEST(VerifyNeutrality, TraceResultsAndTimingBitIdentical) {
  for (const auto strategy :
       {core::DeviceStrategy::kInitial, core::DeviceStrategy::kRowChunk,
        core::DeviceStrategy::kSramResident}) {
    const NeutralRun off = neutral_run(strategy, false);
    const NeutralRun on = neutral_run(strategy, true);
    EXPECT_EQ(off.trace_hash, on.trace_hash)
        << core::to_string(strategy) << ": trace stream changed";
    EXPECT_EQ(off.trace_events, on.trace_events) << core::to_string(strategy);
    EXPECT_EQ(off.kernel_time, on.kernel_time) << core::to_string(strategy);
    ASSERT_EQ(off.solution.size(), on.solution.size());
    for (std::size_t i = 0; i < off.solution.size(); ++i) {
      ASSERT_EQ(off.solution[i], on.solution[i])
          << core::to_string(strategy) << " at " << i;
    }
  }
}

}  // namespace
}  // namespace ttsim
