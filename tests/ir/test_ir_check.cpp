/// \file test_ir_check.cpp
/// The ill-typed graph gallery: one hand-built IR graph per protocol bug
/// class, each asserting the checker rejects it with the right kebab-coded
/// diagnostic — and the matching well-typed twin certifying clean. The
/// slot-ring cases replay the pre-fix PR 3 read-ahead clobber at every
/// depth in [2, 8], the class the reuse-distance check exists to kill.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ttsim/ir/check.hpp"
#include "ttsim/verify/lint.hpp"

namespace ttsim::ir {
namespace {

using verify::LintError;

Graph base_graph(int ncores = 1) {
  Graph g;
  g.name = "ill-typed";
  g.ncores = Count(ncores);
  g.bindings["iters"] = 4;
  g.sram_bytes = std::int64_t{1} << 20;
  return g;
}

Op op(OpKind k, int id, Count c, int pages = 1) { return Op(k, id, c, pages); }

bool has(const std::vector<LintError>& fs, LintError::Code code,
         const std::string& needle = "") {
  return std::any_of(fs.begin(), fs.end(), [&](const LintError& e) {
    return e.code == code && e.message.find(needle) != std::string::npos;
  });
}

// ---- family 1: CB credit flow -----------------------------------------

TEST(IrCheck, ReservePushMismatchIsRejected) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  g.cbs.push_back(CbDecl{0, it, 2048, "cb-a"});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(op(OpKind::kCbReserve, 0, it));
  prod.ops.push_back(op(OpKind::kCbPush, 0, it - Count(1)));
  KernelModel cons{"consumer", 2, Count(1), {}};
  cons.ops.push_back(op(OpKind::kCbWait, 0, it - Count(1)));
  cons.ops.push_back(op(OpKind::kCbPop, 0, it - Count(1)));
  g.kernels = {prod, cons};
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kCbCreditImbalance,
                  "reserve/push totals must match"));
}

TEST(IrCheck, ConsumerStarvesForSomeTripCount) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  // Pushes a constant 2 pages but pops once per iteration: fine for
  // iters <= 2, starves beyond — the sweep must find the witness.
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-a"});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(op(OpKind::kCbReserve, 0, Count(2)));
  prod.ops.push_back(op(OpKind::kCbPush, 0, Count(2)));
  KernelModel cons{"consumer", 2, Count(1), {}};
  cons.ops.push_back(op(OpKind::kCbWait, 0, it));
  cons.ops.push_back(op(OpKind::kCbPop, 0, it));
  g.kernels = {prod, cons};
  const auto fs = check(g);
  EXPECT_TRUE(
      has(fs, LintError::Code::kCbCreditImbalance, "the consumer starves"));
  EXPECT_TRUE(has(fs, LintError::Code::kCbCreditImbalance, "iters=4"));
}

TEST(IrCheck, UnpoppedResiduePastCapacityWedgesProducer) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  // Producer pushes once per iteration, nobody ever pops: the residue
  // outgrows the 2-page capacity and the final push blocks forever.
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-a"});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(op(OpKind::kCbReserve, 0, it));
  prod.ops.push_back(op(OpKind::kCbPush, 0, it));
  g.kernels = {prod};
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kCbCreditImbalance,
                  "wedges on its final push"));
}

TEST(IrCheck, WaitedButNeverPushedStarvesOutright) {
  Graph g = base_graph();
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-a"});
  KernelModel cons{"consumer", 2, Count(1), {}};
  cons.ops.push_back(op(OpKind::kCbWait, 0, Count::sym("iters")));
  g.kernels = {cons};
  const auto fs = check(g);
  EXPECT_TRUE(
      has(fs, LintError::Code::kCbCreditImbalance, "but never pushed"));
}

TEST(IrCheck, ReserveLargerThanCapacityIsOvercommit) {
  Graph g = base_graph();
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-a"});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(op(OpKind::kCbReserve, 0, Count(1), /*pages=*/4));
  prod.ops.push_back(op(OpKind::kCbPush, 0, Count(1), /*pages=*/4));
  g.kernels = {prod};
  const auto fs = check(g);
  EXPECT_TRUE(has(fs, LintError::Code::kCbOvercommit,
                  "can never be satisfied"));
}

// ---- family 2: semaphore pairing --------------------------------------

TEST(IrCheck, DeclaredButUntouchedSemaphoreIsOrphan) {
  Graph g = base_graph();
  g.sems.push_back(SemDecl{3, 0, "sem-ghost"});
  g.kernels.push_back(KernelModel{"worker", 0, Count(1), {}});
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kOrphanSemaphore, "sem-ghost"));
}

TEST(IrCheck, MoreWaitsThanPostsHangsTheLastWait) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  g.sems.push_back(SemDecl{0, 0, "sem-ready"});
  KernelModel waiter{"waiter", 2, Count(1), {}};
  waiter.ops.push_back(op(OpKind::kSemWait, 0, it));
  KernelModel poster{"poster", 0, Count(1), {}};
  poster.ops.push_back(op(OpKind::kSemPost, 0, it - Count(1)));
  g.kernels = {waiter, poster};
  const auto fs = check(g);
  EXPECT_TRUE(has(fs, LintError::Code::kSemImbalance, "the last wait hangs"));
}

TEST(IrCheck, UnguardedHaloWaitStrandsTheBoundaryCore) {
  // Posts travel to the upper neighbour, so the bottom core (which has no
  // lower neighbour to post to it) never receives one — an unguarded wait
  // there hangs. Guarding the wait with kHasLower certifies clean.
  auto build = [](Guard wait_guard) {
    Graph g = base_graph(4);
    g.sems.push_back(SemDecl{0, 0, "sem-halo"});
    KernelModel dm{"dm0", 0, Count(4), {}};
    Op wait = op(OpKind::kSemWait, 0, Count(1));
    wait.guard = wait_guard;
    dm.ops.push_back(wait);
    Op post = op(OpKind::kSemPost, 0, Count(1));
    post.peer = Peer::kUpper;
    post.guard = Guard::kHasUpper;
    dm.ops.push_back(post);
    g.kernels = {dm};
    return g;
  };
  const auto broken = check(build(Guard::kAlways));
  EXPECT_TRUE(has(broken, LintError::Code::kSemImbalance, "core 3"));
  EXPECT_TRUE(check(build(Guard::kHasLower)).empty());
}

// ---- family 3: barrier participant arithmetic -------------------------

TEST(IrCheck, BarrierParticipantCountMismatch) {
  Graph g = base_graph(2);
  const Count it = Count::sym("iters");
  // Declared as a reader+writer rendezvous (2*ncores = 4) but only one
  // kernel's 2 instances ever arrive.
  g.barriers.push_back(BarrierDecl{0, Count(4)});
  KernelModel reader{"reader", 0, Count(2), {}};
  reader.ops.push_back(op(OpKind::kBarrierArrive, 0, it));
  g.kernels = {reader};
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kBadBarrier,
                  "4 participant(s) but 2 kernel instance(s) arrive"));
}

TEST(IrCheck, BarrierUnequalRoundCountsDeadlock) {
  Graph g = base_graph(2);
  const Count it = Count::sym("iters");
  g.barriers.push_back(BarrierDecl{0, Count(4)});
  KernelModel reader{"reader", 0, Count(2), {}};
  reader.ops.push_back(op(OpKind::kBarrierArrive, 0, it));
  KernelModel writer{"writer", 1, Count(2), {}};
  writer.ops.push_back(op(OpKind::kBarrierArrive, 0, it + Count(1)));
  g.kernels = {reader, writer};
  const auto fs = check(g);
  EXPECT_TRUE(has(fs, LintError::Code::kBadBarrier,
                  "unequal round counts deadlock the rendezvous"));
}

TEST(IrCheck, BarrierNobodyArrives) {
  Graph g = base_graph(2);
  g.barriers.push_back(BarrierDecl{0, Count(4)});
  g.kernels.push_back(KernelModel{"reader", 0, Count(2), {}});
  const auto fs = check(g);
  EXPECT_TRUE(has(fs, LintError::Code::kBadBarrier, "no kernel ever"));
}

// ---- family 4: SRAM region liveness -----------------------------------

TEST(IrCheck, RegionPastSramCapacityOverflows) {
  Graph g = base_graph();
  g.regions.push_back(RegionDecl{"slab", Count(std::int64_t{2} << 20)});
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kSramOverflow, "past the 1048576 B"));
}

TEST(IrCheck, PinnedRegionOverlappingTheBumpAllocatorIsCaught) {
  Graph g = base_graph();
  g.regions.push_back(RegionDecl{"cb-pages", Count(64)});
  g.regions.push_back(RegionDecl{"pinned-slab", Count(64), /*pinned=*/32});
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kBufferOverlap,
                  "'cb-pages' and 'pinned-slab' overlap"));
}

// ---- family 5: slot-ring reuse distance (the PR 3 clobber class) ------

RingDecl rowchunk_ring(Count slots, Count issue, Count credit,
                       bool continuous = true, Count columns = Count(1)) {
  RingDecl r;
  r.name = "row-slots";
  r.slots = std::move(slots);
  r.issue_ahead = std::move(issue);
  r.credit_depth = std::move(credit);
  r.read_lo = -1;  // a batch reads its row above...
  r.read_hi = 1;   // ...and below
  r.boundary_extra = Count(0);
  r.continuous = continuous;
  r.columns = std::move(columns);
  return r;
}

TEST(IrCheck, PreFixReadAheadRingRejectedAtEveryDepthSymbolically) {
  // The pre-fix PR 3 sizing: 2*depth+1 slots for a reader that runs
  // `depth` batches ahead with `depth` in-flight credits and consumers
  // reading one slot behind — one slot short at EVERY depth, and the
  // margin is depth-free, so the symbolic proof needs no sweep.
  Graph g = base_graph();
  const Count d = Count::sym("depth");
  g.bindings["depth"] = 2;
  g.ranges["depth"] = {2, 8};
  g.rings.push_back(rowchunk_ring(2 * d + Count(1), d, d));
  const auto fs = check(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(
      has(fs, LintError::Code::kSlotReuse, "violated at every depth"));
}

TEST(IrCheck, PreFixReadAheadRingRejectedAtEachConcreteDepth) {
  for (int depth = 2; depth <= 8; ++depth) {
    Graph g = base_graph();
    g.rings.push_back(rowchunk_ring(Count(2 * depth + 1), Count(depth),
                                    Count(depth)));
    EXPECT_TRUE(has(check(g), LintError::Code::kSlotReuse,
                    "slot is rewritten while an in-flight batch"))
        << "depth " << depth << " escaped the reuse-distance check";
  }
}

TEST(IrCheck, FixedRingSizingIsCleanAtEveryDepth) {
  // The fixed sizing 2*depth+3 leaves a one-slot margin for all depths.
  Graph g = base_graph();
  const Count d = Count::sym("depth");
  g.bindings["depth"] = 2;
  g.ranges["depth"] = {2, 8};
  g.rings.push_back(rowchunk_ring(2 * d + Count(3), d, d));
  EXPECT_TRUE(check(g).empty());
}

TEST(IrCheck, PerColumnRotationResetWithInflightBatchesIsThePr3Prologue) {
  // Resetting the rotation at each column boundary while issued batches
  // are still in flight rewrites slots an unconsumed batch reads — the
  // pre-fix PR 3 prologue. Clamped single-column rotation is fine.
  Graph g = base_graph();
  const Count d = Count::sym("depth");
  g.bindings["depth"] = 4;
  g.rings.push_back(rowchunk_ring(2 * d + Count(3), d, d,
                                  /*continuous=*/false,
                                  /*columns=*/Count::sym("columns")));
  const auto fs = check(g);
  EXPECT_TRUE(has(fs, LintError::Code::kSlotReuse,
                  "pre-fix PR 3 prologue pattern"));

  Graph single = base_graph();
  single.rings.push_back(rowchunk_ring(2 * d + Count(3), d, d,
                                       /*continuous=*/false,
                                       /*columns=*/Count(1)));
  single.bindings["depth"] = 4;
  EXPECT_TRUE(check(single).empty());
}

// ---- family 6: static wait-for cycles ---------------------------------

Graph two_kernel_cycle(int iter_delta) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-ab"});
  g.cbs.push_back(CbDecl{1, Count(2), 2048, "cb-ba"});
  KernelModel a{"kernel-a", 0, Count(1), {}};
  a.ops.push_back(op(OpKind::kCbReserve, 0, it));
  Op wait_b = op(OpKind::kCbWait, 1, it);
  wait_b.iter_delta = iter_delta;
  a.ops.push_back(wait_b);
  a.ops.push_back(op(OpKind::kCbPop, 1, it));
  a.ops.push_back(op(OpKind::kCbPush, 0, it));
  KernelModel b{"kernel-b", 2, Count(1), {}};
  b.ops.push_back(op(OpKind::kCbReserve, 1, it));
  b.ops.push_back(op(OpKind::kCbWait, 0, it));
  b.ops.push_back(op(OpKind::kCbPop, 0, it));
  b.ops.push_back(op(OpKind::kCbPush, 1, it));
  g.kernels = {a, b};
  return g;
}

TEST(IrCheck, MutualFirstWaitIsAWaitCycle) {
  // Each kernel reserves its output page (free at rest), then waits on a
  // CB only the other kernel pushes — and each push sits behind that
  // wait: nobody can move first. Credit-flow is balanced, so only the
  // cycle check can see this bug.
  const auto fs = check(two_kernel_cycle(/*iter_delta=*/0));
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has(fs, LintError::Code::kWaitCycle,
                  "every participant needs another to move first"));
}

TEST(IrCheck, CrossIterationSlackBreaksTheCycle) {
  // The same shape, but kernel A's wait targets iteration k-1's push
  // (iter_delta -1): the first iteration proceeds on the initial credit,
  // so the zero-slack graph is acyclic.
  EXPECT_TRUE(check(two_kernel_cycle(/*iter_delta=*/-1)).empty());
}

// ---- a well-typed graph certifies clean -------------------------------

TEST(IrCheck, CleanProducerConsumerGraphHasNoFindings) {
  Graph g = base_graph();
  const Count it = Count::sym("iters");
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-rows"});
  g.sems.push_back(SemDecl{0, 0, "sem-done"});
  g.barriers.push_back(BarrierDecl{0, Count(2)});
  g.regions.push_back(RegionDecl{"cb-rows", Count(4096)});
  g.regions.push_back(RegionDecl{"slab", Count(64 * 1024)});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(op(OpKind::kCbReserve, 0, it));
  prod.ops.push_back(op(OpKind::kCbPush, 0, it));
  prod.ops.push_back(op(OpKind::kSemWait, 0, Count(1)));
  prod.ops.push_back(op(OpKind::kBarrierArrive, 0, Count(1)));
  KernelModel cons{"consumer", 2, Count(1), {}};
  cons.ops.push_back(op(OpKind::kCbWait, 0, it));
  cons.ops.push_back(op(OpKind::kCbPop, 0, it));
  cons.ops.push_back(op(OpKind::kSemPost, 0, Count(1)));
  cons.ops.push_back(op(OpKind::kBarrierArrive, 0, Count(1)));
  g.kernels = {prod, cons};
  const auto fs = check(g);
  EXPECT_TRUE(fs.empty()) << verify::format_lint(fs);
}

TEST(IrCheck, CheckerCodesRenderAsKebabSlugs) {
  EXPECT_STREQ(verify::to_string(LintError::Code::kCbCreditImbalance),
               "cb-credit-imbalance");
  EXPECT_STREQ(verify::to_string(LintError::Code::kCbOvercommit),
               "cb-overcommit");
  EXPECT_STREQ(verify::to_string(LintError::Code::kSemImbalance),
               "sem-imbalance");
  EXPECT_STREQ(verify::to_string(LintError::Code::kSlotReuse),
               "slot-ring-reuse");
  EXPECT_STREQ(verify::to_string(LintError::Code::kWaitCycle), "wait-cycle");
}

}  // namespace
}  // namespace ttsim::ir
