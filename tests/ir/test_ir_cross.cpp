/// \file test_ir_cross.cpp
/// Cross-validation between the static protocol checker and the dynamic
/// detectors (race detector + deadlock diagnoser):
///   * every graph the frontend certifies lowers to a program that runs
///     CLEAN under the dynamic race detector — the static proof is not
///     vacuous, it certifies exactly the programs the runtime agrees are
///     race-free;
///   * the broken-kernel classes the tests/verify gallery catches at run
///     time are, where the IR can express them, rejected STATICALLY —
///     before a device is ever opened.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/ir_frontend.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/ir/check.hpp"
#include "ttsim/ir/lower.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/lint.hpp"
#include "ttsim/verify/race.hpp"

namespace ttsim {
namespace {

using core::DeviceRunConfig;
using core::DeviceStrategy;
using verify::LintError;

std::string render(const std::vector<verify::Finding>& fs) {
  std::ostringstream os;
  for (const auto& f : fs) {
    os << verify::to_string(f.kind) << " core " << f.core << ": " << f.what
       << "\n";
  }
  return os.str();
}

core::JacobiProblem jacobi_problem(std::uint32_t w = 64, std::uint32_t h = 64,
                                   int iters = 2) {
  core::JacobiProblem p;
  p.width = w;
  p.height = h;
  p.iterations = iters;
  return p;
}

// ---- certified graphs: static check clean, dynamic detector clean -----

TEST(IrCross, JacobiGraphsCertifyCleanAcrossStrategiesAndDepths) {
  for (const DeviceStrategy s :
       {DeviceStrategy::kRowChunk, DeviceStrategy::kSramResident,
        DeviceStrategy::kTemporal}) {
    DeviceRunConfig cfg;
    cfg.strategy = s;
    cfg.cores_y = 4;
    const auto g = core::jacobi_ir_graph(jacobi_problem(), cfg);
    const auto fs = ir::check(g);
    EXPECT_TRUE(fs.empty()) << core::to_string(s) << ":\n"
                            << verify::format_lint(fs);
  }
  // The row-chunk proof is symbolic in the read-ahead depth; certify each
  // concrete depth in [2, 8] as well.
  for (int depth = 2; depth <= 8; ++depth) {
    DeviceRunConfig cfg;
    cfg.read_ahead = depth;
    const auto fs = ir::check(core::jacobi_ir_graph(jacobi_problem(), cfg));
    EXPECT_TRUE(fs.empty()) << "depth " << depth << ":\n"
                            << verify::format_lint(fs);
  }
}

TEST(IrCross, GalleryGraphsCertifyCleanAcrossStrategies) {
  for (const auto& entry : core::gallery::suite()) {
    for (const DeviceStrategy s :
         {DeviceStrategy::kRowChunk, DeviceStrategy::kSramResident,
          DeviceStrategy::kTemporal}) {
      if (s != DeviceStrategy::kRowChunk && entry.problem.passes.size() > 1) {
        continue;  // the device driver itself rejects these configs
      }
      if (s == DeviceStrategy::kSramResident &&
          entry.problem.fields.size() > 1) {
        continue;
      }
      DeviceRunConfig cfg;
      cfg.strategy = s;
      const auto fs =
          ir::check(core::general_ir_graph(entry.problem, cfg));
      EXPECT_TRUE(fs.empty()) << entry.name << " / " << core::to_string(s)
                              << ":\n" << verify::format_lint(fs);
    }
  }
}

TEST(IrCross, CertifiedLoweringRunsCleanUnderTheDynamicRaceDetector) {
  for (const DeviceStrategy s :
       {DeviceStrategy::kRowChunk, DeviceStrategy::kSramResident,
        DeviceStrategy::kTemporal}) {
    ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttmetal::Device::open({}, dc);
    DeviceRunConfig cfg;
    cfg.strategy = s;
    cfg.cores_y = 2;
    cfg.lowering = core::LoweringPath::kIr;  // prove, then lower
    core::run_jacobi_on_device(*dev, jacobi_problem(), cfg);
    const auto fs = dev->verifier()->findings();
    EXPECT_TRUE(fs.empty()) << core::to_string(s) << ":\n" << render(fs);
  }
}

TEST(IrCross, IrAndHandWiredPathsAgreeUnderTheRaceDetector) {
  // Same program bits, same (absent) findings: the IR path adds proof,
  // not behaviour.
  for (const core::LoweringPath path :
       {core::LoweringPath::kIr, core::LoweringPath::kHandWired}) {
    ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttmetal::Device::open({}, dc);
    DeviceRunConfig cfg;
    cfg.read_ahead = 4;
    cfg.cores_y = 4;
    cfg.lowering = path;
    const auto r = core::run_jacobi_on_device(*dev, jacobi_problem(), cfg);
    EXPECT_TRUE(dev->verifier()->findings().empty());
    EXPECT_FALSE(r.solution.empty());
  }
}

// ---- the tests/verify broken classes, caught statically ---------------
//
// The dynamic gallery (tests/verify/test_verify_gallery.cpp) breaks real
// kernels and watches the detector fire mid-run. The same bug classes,
// expressed in the IR, must die in check() — no device, no run.

TEST(IrCross, CbPushPopImbalanceClassIsRejectedStatically) {
  // Dynamic twin: VerifyGallery.CbPushPopImbalance (a consumer popping
  // pages the producer never pushed).
  ir::Graph g;
  g.name = "broken-imbalance";
  g.ncores = ir::Count(1);
  g.bindings["iters"] = 3;
  const ir::Count it = ir::Count::sym("iters");
  g.cbs.push_back(ir::CbDecl{0, ir::Count(2), 2048, "cb-rows"});
  ir::KernelModel prod{"reader", 0, ir::Count(1), {}};
  prod.ops.push_back(ir::Op(ir::OpKind::kCbReserve, 0, it));
  prod.ops.push_back(ir::Op(ir::OpKind::kCbPush, 0, it));
  ir::KernelModel cons{"compute", 2, ir::Count(1), {}};
  cons.ops.push_back(ir::Op(ir::OpKind::kCbWait, 0, it + ir::Count(1)));
  cons.ops.push_back(ir::Op(ir::OpKind::kCbPop, 0, it + ir::Count(1)));
  g.kernels = {prod, cons};
  const auto fs = ir::check(g);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].code, LintError::Code::kCbCreditImbalance);
}

TEST(IrCross, UnpairedSemaphoreWaitClassIsRejectedStatically) {
  // Dynamic twin: VerifyGallery.UnpairedSemaphoreWait (a wait whose post
  // never comes hangs the kernel until the watchdog fires).
  ir::Graph g;
  g.name = "broken-unpaired-wait";
  g.ncores = ir::Count(1);
  g.sems.push_back(ir::SemDecl{0, 0, "sem-never-posted"});
  ir::KernelModel dm{"dm0", 0, ir::Count(1), {}};
  dm.ops.push_back(ir::Op(ir::OpKind::kSemWait, 0, ir::Count(1)));
  g.kernels = {dm};
  const auto fs = ir::check(g);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].code, LintError::Code::kSemImbalance);
}

TEST(IrCross, BarrierParticipantMismatchClassIsRejectedStatically) {
  // Dynamic twin: VerifyGallery.BarrierIdMismatch / the missing-halo-
  // barrier Conway case — a rendezvous some participants never join.
  ir::Graph g;
  g.name = "broken-barrier";
  g.ncores = ir::Count(2);
  g.barriers.push_back(ir::BarrierDecl{0, ir::Count(4)});
  ir::KernelModel dm{"dm0", 0, ir::Count(2), {}};
  dm.ops.push_back(ir::Op(ir::OpKind::kBarrierArrive, 0, ir::Count(1)));
  g.kernels = {dm};
  const auto fs = ir::check(g);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].code, LintError::Code::kBadBarrier);
}

TEST(IrCross, ReadAheadSlotRecycleClassIsRejectedStatically) {
  // Dynamic twin: VerifyGallery.ReadAheadSlotRecycle — the pre-fix PR 3
  // ring, one slot short at every depth. The dynamic detector needs a
  // run per depth; the IR kills the whole family symbolically.
  ir::Graph g;
  g.name = "broken-slot-recycle";
  g.ncores = ir::Count(1);
  g.bindings["depth"] = 2;
  g.ranges["depth"] = {2, 8};
  const ir::Count d = ir::Count::sym("depth");
  ir::RingDecl ring;
  ring.name = "row-slots";
  ring.slots = 2 * d + ir::Count(1);  // pre-fix sizing
  ring.issue_ahead = d;
  ring.credit_depth = d;
  ring.read_lo = -1;
  ring.read_hi = 1;
  ring.boundary_extra = ir::Count(0);
  g.rings.push_back(ring);
  const auto fs = ir::check(g);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].code, LintError::Code::kSlotReuse);
}

TEST(IrCross, TwoKernelDeadlockCycleClassIsRejectedStatically) {
  // Dynamic twin: VerifyGallery.TwoKernelCbDeadlockCycle — each kernel's
  // first wait needs the other to push first.
  ir::Graph g;
  g.name = "broken-cycle";
  g.ncores = ir::Count(1);
  g.bindings["iters"] = 2;
  const ir::Count it = ir::Count::sym("iters");
  g.cbs.push_back(ir::CbDecl{0, ir::Count(2), 2048, "cb-ab"});
  g.cbs.push_back(ir::CbDecl{1, ir::Count(2), 2048, "cb-ba"});
  ir::KernelModel a{"kernel-a", 0, ir::Count(1), {}};
  a.ops.push_back(ir::Op(ir::OpKind::kCbReserve, 0, it));
  a.ops.push_back(ir::Op(ir::OpKind::kCbWait, 1, it));
  a.ops.push_back(ir::Op(ir::OpKind::kCbPop, 1, it));
  a.ops.push_back(ir::Op(ir::OpKind::kCbPush, 0, it));
  ir::KernelModel b{"kernel-b", 2, ir::Count(1), {}};
  b.ops.push_back(ir::Op(ir::OpKind::kCbReserve, 1, it));
  b.ops.push_back(ir::Op(ir::OpKind::kCbWait, 0, it));
  b.ops.push_back(ir::Op(ir::OpKind::kCbPop, 0, it));
  b.ops.push_back(ir::Op(ir::OpKind::kCbPush, 1, it));
  g.kernels = {a, b};
  const auto fs = ir::check(g);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].code, LintError::Code::kWaitCycle);
}

}  // namespace
}  // namespace ttsim
