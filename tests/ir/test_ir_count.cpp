/// \file test_ir_count.cpp
/// The symbolic Count polynomial: canonical normal form, sign proofs and
/// evaluation — the algebra every checker obligation reduces to.

#include <gtest/gtest.h>

#include "ttsim/ir/count.hpp"

namespace ttsim::ir {
namespace {

TEST(Count, ConstantsFoldAndZeroIsErased) {
  EXPECT_TRUE(Count(0).is_zero());
  EXPECT_TRUE((Count(3) - Count(3)).is_zero());
  EXPECT_EQ(Count(2) + Count(3), Count(5));
  EXPECT_EQ(Count(2) * Count(3), Count(6));
}

TEST(Count, NormalFormDecidesEqualityForAllAssignments) {
  const Count a = Count::sym("a");
  const Count b = Count::sym("b");
  // (a + b)^2 == a^2 + 2ab + b^2 as polynomials, not just at one point.
  EXPECT_EQ((a + b) * (a + b), a * a + 2 * (a * b) + b * b);
  EXPECT_NE(a * b, a + b);
  EXPECT_TRUE((a - a).is_zero());
  // Monomials are sorted multisets: a*b and b*a are the same term.
  EXPECT_EQ(a * b, b * a);
}

TEST(Count, SignProofs) {
  const Count d = Count::sym("depth");
  EXPECT_TRUE((2 * d + Count(3)).always_nonnegative());
  EXPECT_TRUE((Count(0) - d).always_nonpositive());
  // Mixed signs prove neither — the prover falls back to range sweeps.
  const Count mixed = d - Count(5);
  EXPECT_FALSE(mixed.always_nonnegative());
  EXPECT_FALSE(mixed.always_nonpositive());
}

TEST(Count, EvalBindsSymbolsWithDefaultFallback) {
  const Count c = 2 * Count::sym("depth") * Count::sym("iters") + Count(3);
  EXPECT_EQ(c.eval({{"depth", 4}, {"iters", 10}}), 83);
  // Unbound symbols evaluate as the default (1).
  EXPECT_EQ(c.eval({{"depth", 4}}), 11);
  EXPECT_EQ(c.eval({}, 2), 11);
}

TEST(Count, SymbolsAreSortedAndDeduplicated) {
  const Count c = Count::sym("iters") * Count::sym("depth") +
                  Count::sym("depth") + Count(7);
  const std::vector<std::string> expect{"depth", "iters"};
  EXPECT_EQ(c.symbols(), expect);
  EXPECT_TRUE(Count(5).symbols().empty());
}

TEST(Count, RendersReadableNormalForm) {
  EXPECT_EQ(Count(0).str(), "0");
  EXPECT_EQ((2 * Count::sym("depth") + Count(3)).str(), "3 + 2*depth");
  EXPECT_EQ((Count::sym("iters") * Count::sym("batches")).str(),
            "batches*iters");
  EXPECT_EQ((Count(0) - Count::sym("x")).str(), "-x");
}

}  // namespace
}  // namespace ttsim::ir
