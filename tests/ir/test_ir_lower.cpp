/// \file test_ir_lower.cpp
/// lower(): the certify-then-emit gate. An ill-typed graph must never
/// reach the emit closure; a certified one must emit exactly once; and
/// dump() must render every declared resource and op for --ir-dump.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ttsim/ir/lower.hpp"
#include "ttsim/ttmetal/program.hpp"

namespace ttsim::ir {
namespace {

Graph clean_graph() {
  Graph g;
  g.name = "unit";
  g.ncores = Count(1);
  g.bindings["iters"] = 4;
  g.sram_bytes = std::int64_t{1} << 20;
  const Count it = Count::sym("iters");
  g.cbs.push_back(CbDecl{0, Count(2), 2048, "cb-rows"});
  KernelModel prod{"producer", 0, Count(1), {}};
  prod.ops.push_back(Op(OpKind::kCbReserve, 0, it));
  prod.ops.push_back(Op(OpKind::kCbPush, 0, it));
  KernelModel cons{"consumer", 2, Count(1), {}};
  cons.ops.emplace_back(OpKind::kComputeTile, -1, it);
  cons.ops.back().note = "5-point update";
  cons.ops.push_back(Op(OpKind::kCbWait, 0, it));
  cons.ops.push_back(Op(OpKind::kCbPop, 0, it));
  g.kernels = {prod, cons};
  return g;
}

TEST(IrLower, CertifiedGraphInvokesEmitExactlyOnce) {
  Graph g = clean_graph();
  int emitted = 0;
  g.emit = [&emitted](ttmetal::Program&) { ++emitted; };
  ttmetal::Program prog;
  lower(g, prog);
  EXPECT_EQ(emitted, 1);
}

TEST(IrLower, IllTypedGraphThrowsCheckErrorBeforeEmit) {
  Graph g = clean_graph();
  // Break the producer: reserve without the matching push.
  g.kernels[0].ops.pop_back();
  bool emitted = false;
  g.emit = [&emitted](ttmetal::Program&) { emitted = true; };
  ttmetal::Program prog;
  try {
    lower(g, prog);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_FALSE(emitted) << "emit ran on an un-certified graph";
    ASSERT_FALSE(e.findings.empty());
    EXPECT_NE(std::string(e.what()).find("cb-credit-imbalance"),
              std::string::npos)
        << e.what();
  }
}

TEST(IrLower, GraphWithoutEmitClosureIsALogicError) {
  Graph g = clean_graph();
  ttmetal::Program prog;
  EXPECT_THROW(lower(g, prog), std::logic_error);
}

TEST(IrLower, DumpRendersResourcesOpsAndCounts) {
  Graph g = clean_graph();
  const Count it = Count::sym("iters");
  g.sems.push_back(SemDecl{0, 1, "sem-free"});
  g.kernels[0].ops.push_back(Op(OpKind::kSemWait, 0, it));
  g.kernels[1].ops.push_back(Op(OpKind::kSemPost, 0, it));
  g.barriers.push_back(BarrierDecl{7, Count(2)});
  g.kernels[0].ops.push_back(Op(OpKind::kBarrierArrive, 7, Count(1)));
  g.kernels[1].ops.push_back(Op(OpKind::kBarrierArrive, 7, Count(1)));
  g.regions.push_back(RegionDecl{"slab-a", Count(4096)});
  const std::string text = dump(g);
  for (const char* needle :
       {"unit", "cb-rows", "producer", "consumer", "sem-free", "slab-a",
        "iters", "5-point update"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "dump is missing '" << needle << "':\n" << text;
  }
}

}  // namespace
}  // namespace ttsim::ir
