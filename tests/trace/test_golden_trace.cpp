/// \file test_golden_trace.cpp
/// Golden-trace regression tests: run a fixed set of workloads with tracing
/// enabled and pin the FNV-1a hash of the canonicalized event stream. Any
/// change to the simulator's timing, scheduling, event ordering or trace
/// emission shows up as a hash mismatch here — the whole event stream is the
/// regression surface, not a handful of spot-checked numbers.
///
/// When a change is *intentional* (a timing model fix, a new event kind),
/// regenerate the pins:
///
///   TTSIM_REGEN_GOLDEN=1 ./tests/test_trace --gtest_filter='GoldenTrace.*'
///
/// prints the new constants instead of asserting; paste them below and
/// explain the timing change in the commit message. See tests/trace/README.md.

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim {
namespace {

struct GoldenRun {
  std::uint64_t hash = 0;
  std::size_t events = 0;
};

/// Run `workload` against a freshly opened traced device and hash the event
/// stream it leaves behind. The sink is cleared after open so buffer setup
/// noise outside the workload is still included — intentionally: golden
/// traces pin the whole run, PCIe setup included.
template <typename Workload>
GoldenRun traced(Workload&& workload, ttmetal::DeviceConfig dc = {}) {
  dc.enable_trace = true;
  auto dev = ttmetal::Device::open({}, dc);
  workload(*dev);
  return {dev->trace()->hash(), dev->trace()->size()};
}

GoldenRun jacobi_run(core::DeviceStrategy strategy, int cores_y = 1) {
  return traced([&](ttmetal::Device& dev) {
    core::JacobiProblem p;
    p.width = 64;
    p.height = 64;
    p.iterations = 2;
    core::DeviceRunConfig cfg;
    cfg.strategy = strategy;
    cfg.cores_y = cores_y;
    core::run_jacobi_on_device(dev, p, cfg);
  });
}

/// Temporal tiling with two epochs (4 iterations at depth 2): the pinned
/// stream covers the skirt loads, the in-L1 sub-step chain, the semaphore
/// ring hand-off and the inter-epoch global barrier.
GoldenRun temporal_run() {
  return traced([&](ttmetal::Device& dev) {
    core::JacobiProblem p;
    p.width = 64;
    p.height = 64;
    p.iterations = 4;
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kTemporal;
    cfg.cores_y = 2;
    cfg.temporal_depth = 2;
    core::run_jacobi_on_device(dev, p, cfg);
  });
}

GoldenRun stream_run(int num_cores, std::uint64_t interleave_page) {
  return traced([&](ttmetal::Device& dev) {
    stream::StreamParams p;
    p.rows = 32;
    p.num_cores = num_cores;
    p.interleave_page = interleave_page;
    stream::run_streaming_benchmark(dev, p);
  });
}

GoldenRun faulty_run() {
  sim::FaultConfig fc;
  fc.seed = 11;
  fc.mover_stall_prob = 0.05;
  fc.noc_delay_prob = 0.05;
  ttmetal::DeviceConfig dc;
  dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  return traced(
      [&](ttmetal::Device& dev) {
        core::JacobiProblem p;
        p.width = 64;
        p.height = 64;
        p.iterations = 2;
        core::DeviceRunConfig cfg;
        cfg.strategy = core::DeviceStrategy::kRowChunk;
        core::run_jacobi_on_device(dev, p, cfg);
      },
      dc);
}

/// One gallery workload from the generic-stencil frontend, lowered through
/// the same row-chunk kernels the conformance sweep exercises. The suite's
/// default shape (64x48, 6 iterations) on a 1x2 grid keeps multi-field CB
/// maps, multi-pass barriers and the Life post-op all inside the pinned
/// stream.
GoldenRun gallery_run(const std::string& name) {
  return traced([&](ttmetal::Device& dev) {
    for (const auto& named : core::gallery::suite()) {
      if (named.name != name) continue;
      core::DeviceRunConfig cfg;
      cfg.strategy = core::DeviceStrategy::kRowChunk;
      cfg.cores_y = 2;
      core::run_general_stencil_on_device(dev, named.problem, cfg);
      return;
    }
    FAIL() << "gallery workload not found: " << name;
  });
}

/// Two line-cabled cards running the deep-halo sharded solver, with the
/// fabric's private sink traced alongside both devices. The pinned digest is
/// FNV-1a over the concatenation card0 + card1 + fabric canonical texts —
/// track ids inside each sink are named by *global* card id, so the combined
/// stream is stable no matter how the cluster is assembled.
GoldenRun sharded_run() {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  sim::ChipLinkConfig link = sim::ChipLinkConfig::from_spec({});
  link.enable_trace = true;
  auto cluster = core::ShardedCluster::open(2, {}, dc, link);
  core::JacobiProblem p;
  p.width = 64;
  p.height = 64;
  p.iterations = 4;
  core::ShardedRunConfig cfg;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.exchange_every = 2;  // two epochs, one extension row per cut
  const auto devs = cluster.devices();
  core::run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
  std::string canon;
  std::size_t events = 0;
  for (auto* dev : devs) {
    canon += dev->trace()->canonical();
    events += dev->trace()->size();
  }
  canon += cluster.fabric->trace()->canonical();
  events += cluster.fabric->trace()->size();
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canon) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return {h, events};
}

/// Pin `run` to `golden`, or print the replacement constant when
/// TTSIM_REGEN_GOLDEN is set. Always re-executes the workload a second time
/// and demands hash equality: a golden value is only meaningful if the trace
/// is reproducible in the first place.
template <typename Workload>
void expect_golden(const char* name, Workload&& workload, std::uint64_t golden) {
  const GoldenRun a = workload();
  const GoldenRun b = workload();
  ASSERT_EQ(a.hash, b.hash) << name << ": trace not reproducible across two "
                            << "runs in the same process";
  ASSERT_EQ(a.events, b.events);
  ASSERT_GT(a.events, 0u) << name << ": workload produced no events";
  if (std::getenv("TTSIM_REGEN_GOLDEN") != nullptr) {
    std::cout << "GOLDEN " << name << " = 0x" << std::hex << a.hash << std::dec
              << "ull;  // " << a.events << " events\n";
    return;
  }
  EXPECT_EQ(a.hash, golden)
      << name << ": canonical event stream changed (got 0x" << std::hex << a.hash
      << ", pinned 0x" << golden << std::dec << ", " << a.events
      << " events). If the timing/semantic change is intentional, regenerate "
      << "with TTSIM_REGEN_GOLDEN=1 (see tests/trace/README.md).";
}

// --- pinned hashes (regenerate with TTSIM_REGEN_GOLDEN=1) ---
constexpr std::uint64_t kGoldenJacobiTiled = 0xc16762991f5f97cfull;            // 5492 events
constexpr std::uint64_t kGoldenJacobiDoubleBuffered = 0x1fbbe715c38f9d40ull;   // 4974 events
constexpr std::uint64_t kGoldenJacobiRowChunk = 0x81141f868a1db837ull;         // 5414 events
constexpr std::uint64_t kGoldenJacobiRowChunkMulticore = 0x29c55a7f6c24610full;  // 5451 events
constexpr std::uint64_t kGoldenStreamSingleCore = 0xeca69c538be2aafull;        // 521 events
constexpr std::uint64_t kGoldenStreamInterleaved = 0x3794630502d0b6f3ull;      // 598 events
constexpr std::uint64_t kGoldenFaultyRowChunk = 0xe8d649c109af0e42ull;         // 5458 events
constexpr std::uint64_t kGoldenGalleryHotspot = 0x133936c67a17a930ull;         // 20963 events
constexpr std::uint64_t kGoldenGalleryFdtd2d = 0x4f49ec64b9bbeabdull;          // 50079 events
constexpr std::uint64_t kGoldenGalleryConvection = 0x626b6734c264ad2cull;      // 25269 events
constexpr std::uint64_t kGoldenGalleryLife = 0x7e37c045e2025bceull;            // 28149 events
constexpr std::uint64_t kGoldenJacobiTemporal = 0x4dbb2e1396942c25ull;         // 6091 events
constexpr std::uint64_t kGoldenJacobiSharded2Card = 0xa46130ea2462e6bfull;     // 11236 events

TEST(GoldenTrace, JacobiTiled) {
  expect_golden(
      "kGoldenJacobiTiled",
      [] { return jacobi_run(core::DeviceStrategy::kInitial); },
      kGoldenJacobiTiled);
}

TEST(GoldenTrace, JacobiDoubleBuffered) {
  expect_golden(
      "kGoldenJacobiDoubleBuffered",
      [] { return jacobi_run(core::DeviceStrategy::kDoubleBuffered); },
      kGoldenJacobiDoubleBuffered);
}

TEST(GoldenTrace, JacobiRowChunk) {
  expect_golden(
      "kGoldenJacobiRowChunk",
      [] { return jacobi_run(core::DeviceStrategy::kRowChunk); },
      kGoldenJacobiRowChunk);
}

TEST(GoldenTrace, JacobiRowChunkMulticore) {
  expect_golden(
      "kGoldenJacobiRowChunkMulticore",
      [] { return jacobi_run(core::DeviceStrategy::kRowChunk, /*cores_y=*/2); },
      kGoldenJacobiRowChunkMulticore);
}

TEST(GoldenTrace, JacobiTemporal) {
  expect_golden("kGoldenJacobiTemporal", [] { return temporal_run(); },
                kGoldenJacobiTemporal);
}

TEST(GoldenTrace, JacobiSharded2Card) {
  expect_golden("kGoldenJacobiSharded2Card", [] { return sharded_run(); },
                kGoldenJacobiSharded2Card);
}

TEST(GoldenTrace, StreamSingleCore) {
  expect_golden(
      "kGoldenStreamSingleCore", [] { return stream_run(1, 0); },
      kGoldenStreamSingleCore);
}

TEST(GoldenTrace, StreamInterleavedMulticore) {
  expect_golden(
      "kGoldenStreamInterleaved", [] { return stream_run(2, 16 * KiB); },
      kGoldenStreamInterleaved);
}

TEST(GoldenTrace, FaultInjectionRowChunk) {
  expect_golden("kGoldenFaultyRowChunk", [] { return faulty_run(); },
                kGoldenFaultyRowChunk);
}

TEST(GoldenTrace, GalleryHotspot) {
  expect_golden("kGoldenGalleryHotspot", [] { return gallery_run("hotspot"); },
                kGoldenGalleryHotspot);
}

TEST(GoldenTrace, GalleryFdtd2d) {
  expect_golden("kGoldenGalleryFdtd2d", [] { return gallery_run("fdtd2d"); },
                kGoldenGalleryFdtd2d);
}

TEST(GoldenTrace, GalleryConvection) {
  expect_golden("kGoldenGalleryConvection",
                [] { return gallery_run("convection"); },
                kGoldenGalleryConvection);
}

TEST(GoldenTrace, GalleryLife) {
  expect_golden("kGoldenGalleryLife", [] { return gallery_run("life"); },
                kGoldenGalleryLife);
}

/// The hash is a digest of the canonical text; make sure the two stay in
/// sync (a refactor that changes canonical() but forgets hash() — or vice
/// versa — would silently decouple the golden pins from the artifact a
/// human inspects when they diverge).
TEST(GoldenTrace, HashMatchesCanonicalText) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  auto dev = ttmetal::Device::open({}, dc);
  stream::StreamParams p;
  p.rows = 4;
  stream::run_streaming_benchmark(*dev, p);
  const std::string canon = dev->trace()->canonical();
  ASSERT_FALSE(canon.empty());
  // FNV-1a 64, the exact algorithm documented in trace.hpp.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canon) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  EXPECT_EQ(h, dev->trace()->hash());
}

}  // namespace
}  // namespace ttsim
