/// \file test_trace_neutrality.cpp
/// Property test for the trace layer's central contract: tracing is
/// observationally neutral. A traced run and an untraced run of the same
/// workload must produce bit-identical results and identical simulated
/// times — recording an event never charges simulated time, perturbs
/// scheduling order, or changes data. This is what makes golden traces
/// trustworthy: the trace describes the run the user would have had anyway.

#include <gtest/gtest.h>

#include <cstring>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim {
namespace {

struct Observed {
  std::vector<float> solution;
  SimTime kernel_time = 0;
  SimTime final_clock = 0;
};

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

Observed observe_jacobi(bool traced, core::DeviceStrategy strategy, int cores_y,
                        std::shared_ptr<sim::FaultPlan> plan = nullptr) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = traced;
  dc.fault_plan = std::move(plan);
  auto dev = ttmetal::Device::open({}, dc);
  core::JacobiProblem p;
  p.width = 96;
  p.height = 64;
  p.iterations = 3;
  core::DeviceRunConfig cfg;
  cfg.strategy = strategy;
  cfg.cores_y = cores_y;
  const auto r = core::run_jacobi_on_device(*dev, p, cfg);
  EXPECT_TRUE(r.verified_ok);
  if (traced) {
    EXPECT_NE(dev->trace(), nullptr);
    EXPECT_GT(dev->trace()->size(), 0u);
  } else {
    EXPECT_EQ(dev->trace(), nullptr);
  }
  return {r.solution, r.kernel_time, dev->now()};
}

Observed observe_stream(bool traced, int num_cores, std::uint64_t interleave_page) {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = traced;
  auto dev = ttmetal::Device::open({}, dc);
  stream::StreamParams p;
  p.rows = 64;
  p.num_cores = num_cores;
  p.interleave_page = interleave_page;
  const auto r = stream::run_streaming_benchmark(*dev, p);
  EXPECT_TRUE(r.verified_ok);
  return {{}, r.kernel_time, dev->now()};
}

void expect_neutral(const Observed& off, const Observed& on) {
  // Bit-identical results: the solution vectors compare equal elementwise.
  ASSERT_EQ(off.solution.size(), on.solution.size());
  for (std::size_t i = 0; i < off.solution.size(); ++i) {
    ASSERT_EQ(float_bits(off.solution[i]), float_bits(on.solution[i]))
        << "element " << i;
  }
  // Identical simulated durations, to the picosecond.
  EXPECT_EQ(off.kernel_time, on.kernel_time);
  EXPECT_EQ(off.final_clock, on.final_clock);
}

TEST(TraceNeutrality, JacobiTiledPipeline) {
  expect_neutral(observe_jacobi(false, core::DeviceStrategy::kDoubleBuffered, 1),
                 observe_jacobi(true, core::DeviceStrategy::kDoubleBuffered, 1));
}

TEST(TraceNeutrality, JacobiRowChunkMulticore) {
  expect_neutral(observe_jacobi(false, core::DeviceStrategy::kRowChunk, 2),
                 observe_jacobi(true, core::DeviceStrategy::kRowChunk, 2));
}

TEST(TraceNeutrality, JacobiSramResident) {
  expect_neutral(observe_jacobi(false, core::DeviceStrategy::kSramResident, 2),
                 observe_jacobi(true, core::DeviceStrategy::kSramResident, 2));
}

TEST(TraceNeutrality, StreamInterleavedMulticore) {
  expect_neutral(observe_stream(false, 2, 16 * KiB),
                 observe_stream(true, 2, 16 * KiB));
}

/// Neutrality must also hold with fault injection active: the FaultPlan's
/// decision stream is driven by the simulated schedule, so any tracing
/// perturbation would change *which faults fire* — a particularly loud
/// failure mode worth pinning.
TEST(TraceNeutrality, FaultInjectionSchedule) {
  sim::FaultConfig fc;
  fc.seed = 5;
  fc.mover_stall_prob = 0.05;
  fc.noc_delay_prob = 0.05;
  const auto run = [&](bool traced) {
    auto plan = std::make_shared<sim::FaultPlan>(fc);
    auto obs = observe_jacobi(traced, core::DeviceStrategy::kRowChunk, 2, plan);
    return std::make_pair(std::move(obs), plan->trace_string());
  };
  const auto [off, off_faults] = run(false);
  const auto [on, on_faults] = run(true);
  expect_neutral(off, on);
  EXPECT_FALSE(off_faults.empty());
  EXPECT_EQ(off_faults, on_faults);
}

}  // namespace
}  // namespace ttsim
