/// \file test_attribution.cpp
/// Mechanism-assertion tests: the trace/metrics layer must *attribute* each
/// paper mechanism to the right resource, not merely record events. Each
/// test runs a configuration from the paper, aggregates the trace with
/// build_metrics, and asserts the attribution the paper's analysis gives:
///
///  - Table II: the tiled pipeline is bound by the reader baby-core's
///    software memcpy (the Section V diagnosis that motivates cb_set_rd_ptr).
///  - Table VII: streaming from a single DRAM bank saturates that bank at
///    two cores (and is visibly unsaturated at one).
///  - Fault injection: every injection the FaultPlan performed appears in
///    the simulator trace, exactly once, with matching time/kind/core.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/sim/metrics.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim {
namespace {

ttmetal::DeviceConfig traced_config() {
  ttmetal::DeviceConfig dc;
  dc.enable_trace = true;
  return dc;
}

/// Summed metrics of every kernel named "<group>@...".
struct GroupTotals {
  SimTime issue = 0;
  SimTime memcpy_time = 0;
  SimTime fpu = 0;
  SimTime cb_wait = 0;
  SimTime lifetime = 0;
  SimTime self_busy() const { return issue + memcpy_time + fpu; }
};

GroupTotals sum_group(const sim::MetricsReport& m, const std::string& group) {
  GroupTotals total;
  for (const auto& k : m.kernels) {
    if (k.name.rfind(group, 0) != 0) continue;
    total.issue += k.issue;
    total.memcpy_time += k.memcpy_time;
    total.fpu += k.fpu;
    total.cb_wait += k.cb_full_wait + k.cb_empty_wait;
    total.lifetime += k.lifetime();
  }
  return total;
}

TEST(Attribution, Table2TiledPipelineIsReaderMemcpyBound) {
  auto dev = ttmetal::Device::open({}, traced_config());
  core::JacobiProblem p;
  p.width = 256;
  p.height = 256;
  p.iterations = 2;
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kDoubleBuffered;
  dev->trace()->clear();
  const auto r = core::run_jacobi_on_device(*dev, p, cfg);
  ASSERT_TRUE(r.verified_ok);

  const sim::MetricsReport m = dev->metrics();
  const auto reader = sum_group(m, "jacobi_tiled_reader");
  const auto compute = sum_group(m, "jacobi_tiled_compute");
  ASSERT_GT(reader.lifetime, 0) << "no reader kernels in the trace";
  ASSERT_GT(compute.lifetime, 0) << "no compute kernels in the trace";

  // The reader's own busy time is dominated by l1_memcpy — the paper's
  // "large overhead [...] copying data" diagnosis.
  EXPECT_GT(reader.memcpy_time, reader.self_busy() / 2);
  // And that memcpy keeps the reader busy for most of its lifetime: the
  // pipeline is producer-limited, not DRAM- or compute-limited.
  EXPECT_GT(static_cast<double>(reader.self_busy()) /
                static_cast<double>(reader.lifetime),
            0.8);
  // The compute kernel spends most of its lifetime starved on CBs.
  EXPECT_GT(compute.cb_wait, compute.lifetime / 2);
  // DRAM is nowhere near saturation in this regime.
  EXPECT_LT(m.max_bank_utilization(), 0.5);
}

TEST(Attribution, Table7SingleBankSaturatesAtTwoCores) {
  const auto bank_util = [](int num_cores) {
    auto dev = ttmetal::Device::open({}, traced_config());
    stream::StreamParams p;
    p.rows = 256;
    p.verify = false;
    p.num_cores = num_cores;
    dev->trace()->clear();
    stream::run_streaming_benchmark(*dev, p);
    return dev->metrics().max_bank_utilization();
  };
  // Paper Table VII: one core leaves single-bank bandwidth on the table;
  // two cores saturate the bank (the per-bank wall that motivates
  // interleaving across banks).
  EXPECT_LT(bank_util(1), 0.6);
  EXPECT_GT(bank_util(2), 0.85);
}

TEST(Attribution, FaultInjectionsMirrorThePlanExactly) {
  sim::FaultConfig fc;
  fc.seed = 23;
  fc.mover_stall_prob = 0.08;
  fc.noc_delay_prob = 0.08;
  fc.dram_read_bitflip_prob = 0.001;

  const auto run = [&] {
    ttmetal::DeviceConfig dc = traced_config();
    dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
    auto dev = ttmetal::Device::open({}, dc);
    core::JacobiProblem p;
    p.width = 64;
    p.height = 64;
    p.iterations = 2;
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.verify = false;  // bit flips may corrupt the numerics; irrelevant here
    core::run_jacobi_on_device(*dev, p, cfg);

    std::vector<sim::TraceEvent> faults;
    for (const auto& e : dev->trace()->events()) {
      if (e.kind == sim::TraceEventKind::kFault) faults.push_back(e);
    }
    return std::make_pair(faults, dev->fault_plan()->trace());
  };

  const auto [faults, plan] = run();
  ASSERT_FALSE(plan.empty()) << "workload never hit a fault decision point; "
                                "raise the probabilities";
  // Exactly one trace event per planned injection, in order, with matching
  // kind, time, core and address.
  ASSERT_EQ(faults.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(faults[i].a, static_cast<std::int32_t>(plan[i].kind)) << "event " << i;
    EXPECT_EQ(faults[i].ts, plan[i].time) << "event " << i;
    EXPECT_EQ(faults[i].core, plan[i].core) << "event " << i;
    EXPECT_EQ(faults[i].addr, plan[i].addr) << "event " << i;
    EXPECT_EQ(faults[i].bytes, plan[i].size) << "event " << i;
  }

  // Same seed, same workload: the injection stream reproduces exactly.
  const auto [faults2, plan2] = run();
  ASSERT_EQ(faults2.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(faults2[i].ts, faults[i].ts);
    EXPECT_EQ(faults2[i].a, faults[i].a);
    EXPECT_EQ(faults2[i].core, faults[i].core);
    EXPECT_EQ(faults2[i].addr, faults[i].addr);
  }
}

/// metrics() is an API error without enable_trace — the failure mode is a
/// typed exception, not an empty report silently attributing nothing.
TEST(Attribution, MetricsRequireTracing) {
  auto dev = ttmetal::Device::open();
  EXPECT_EQ(dev->trace(), nullptr);
  EXPECT_THROW(dev->metrics(), ApiError);
}

}  // namespace
}  // namespace ttsim
