/// Async command queues: overlap, event ordering, error surfacing on the
/// enqueued (non-blocking) paths, and timeline determinism.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 31 + 7);
  return v;
}

TEST(CommandQueue, AsyncTransferOverlapsKernel) {
  // Serial reference: program then write, blocking.
  auto serial = Device::open();
  Program prog_a;
  prog_a.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.spin(2 * kMillisecond); }, "spin");
  const auto data = pattern(4 * MiB);
  auto buf_a = serial->create_buffer({.size = data.size()});
  const SimTime serial_start = serial->now();
  serial->run_program(prog_a);
  serial->write_buffer(*buf_a, data);
  const SimTime serial_span = serial->now() - serial_start;

  // Async: the same work on two queues; the PCIe write rides under the
  // kernel, so the makespan shrinks by (almost) the transfer time.
  auto async = Device::open();
  Program prog_b;
  prog_b.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.spin(2 * kMillisecond); }, "spin");
  auto buf_b = async->create_buffer({.size = data.size()});
  const SimTime async_start = async->now();
  async->command_queue(1).enqueue_program(prog_b, /*blocking=*/false);
  async->command_queue(0).enqueue_write_buffer(*buf_b, data, /*blocking=*/false);
  async->command_queue(0).finish();
  async->command_queue(1).finish();
  const SimTime async_span = async->now() - async_start;

  EXPECT_LT(async_span, serial_span);
  // The write landed intact despite running concurrently.
  std::vector<std::byte> back(data.size());
  async->read_buffer(*buf_b, back);
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(CommandQueue, EventsOrderAcrossQueues) {
  auto dev = Device::open();
  const auto data = pattern(1 * MiB);
  auto buf = dev->create_buffer({.size = data.size()});

  auto& cq_write = dev->command_queue(0);
  auto& cq_kernel = dev->command_queue(1);
  cq_write.enqueue_write_buffer(*buf, data, /*blocking=*/false);
  Event write_done = cq_write.record_event();

  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.spin(1 * kMicrosecond); }, "gated");
  cq_kernel.wait_for_event(write_done);
  cq_kernel.enqueue_program(prog, /*blocking=*/false);
  Event kernel_done = cq_kernel.record_event();

  EXPECT_FALSE(write_done.completed());
  EXPECT_FALSE(kernel_done.completed());
  dev->synchronize(kernel_done);
  ASSERT_TRUE(write_done.completed());
  ASSERT_TRUE(kernel_done.completed());
  // The gated program ran strictly after the transfer completed.
  EXPECT_GE(kernel_done.completed_at(),
            write_done.completed_at() + 1 * kMicrosecond);
}

TEST(CommandQueue, SynchronizeOnCompletedEventIsImmediate) {
  auto dev = Device::open();
  auto& cq = dev->command_queue(0);
  Event e = cq.record_event();  // empty queue: completes inline
  EXPECT_TRUE(e.completed());
  dev->synchronize(e);  // no-op, must not deadlock
  EXPECT_EQ(e.completed_at(), 0u);
}

TEST(CommandQueue, InvalidEventQueriesThrow) {
  Event e;
  EXPECT_FALSE(e.valid());
  EXPECT_FALSE(e.completed());
  EXPECT_THROW(e.completed_at(), ApiError);
  auto dev = Device::open();
  EXPECT_THROW(dev->synchronize(e), CheckError);
}

TEST(CommandQueue, CrossDeviceEventRejected) {
  auto a = Device::open();
  auto b = Device::open();
  Event e = a->command_queue(0).record_event();
  EXPECT_THROW(b->command_queue(0).wait_for_event(e), CheckError);
  EXPECT_THROW(b->synchronize(e), CheckError);
}

TEST(CommandQueue, EnqueuedProgramTimeoutSurfacesAtFinish) {
  // The watchdog contract holds on the enqueued path too: the error arrives
  // at finish(), typed, naming the stuck kernel.
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});
  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(1 * kMicrosecond);
        ctx.semaphore_wait(0);
      },
      "stuck_async");
  auto& cq = dev->command_queue(0);
  cq.enqueue_program(prog, /*blocking=*/false);
  try {
    cq.finish();
    FAIL() << "expected watchdog timeout";
  } catch (const DeviceTimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck_async@0"), std::string::npos);
  }
  // Partial-profile contract: the entry is retained, unfinished, with the
  // activity charged before the hang.
  ASSERT_EQ(dev->last_profile().size(), 1u);
  EXPECT_FALSE(dev->last_profile()[0].finished);
  EXPECT_GE(dev->last_profile()[0].active, 1 * kMicrosecond);
  EXPECT_LT(dev->last_profile()[0].active, 2 * kMicrosecond);
  // The watchdog fires at drain time, so the unfinished kernel's lifetime is
  // clamped there — at (not before) the activity charged so far.
  EXPECT_GE(dev->last_profile()[0].lifetime, dev->last_profile()[0].active);
}

TEST(CommandQueue, WedgedDeviceRejectsQueuedPrograms) {
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});
  Program hang;
  hang.create_semaphore(0, {0}, 0);
  hang.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.semaphore_wait(0); }, "hang");
  auto& cq = dev->command_queue(0);
  cq.enqueue_program(hang, /*blocking=*/false);
  EXPECT_THROW(cq.finish(), DeviceTimeoutError);

  Program after;
  after.create_kernel(
      KernelKind::kDataMover0, {1}, [](DataMoverCtx&) {}, "after");
  cq.enqueue_program(after, /*blocking=*/false);
  try {
    cq.finish();
    FAIL() << "expected wedged rejection";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("wedged"), std::string::npos);
  }
}

TEST(CommandQueue, ValidationErrorNamesBufferOnEnqueuedPath) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 512, .name = "grid-async"});
  std::vector<std::byte> big(1024);
  try {
    dev->command_queue(0).enqueue_write_buffer(*buf, big, /*blocking=*/false);
    FAIL() << "expected range validation";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("grid-async"), std::string::npos);
  }
}

TEST(CommandQueue, TimelineIsDeterministic) {
  // The same enqueue sequence on two fresh devices produces identical
  // simulated completion times — the property the serving layer builds on.
  auto run = [] {
    auto dev = Device::open();
    const auto data = pattern(2 * MiB);
    auto buf = dev->create_buffer({.size = data.size()});
    Program prog;
    prog.create_kernel(
        KernelKind::kDataMover0, {0, 1, 2},
        [](DataMoverCtx& ctx) { ctx.spin(300 * kMicrosecond); }, "work");
    auto& cq_write = dev->command_queue(0);
    auto& cq_kernel = dev->command_queue(1);
    cq_write.enqueue_write_buffer(*buf, data, false);
    Event w = cq_write.record_event();
    cq_kernel.wait_for_event(w);
    cq_kernel.enqueue_program(prog, false);
    Event k = cq_kernel.record_event();
    dev->synchronize(k);
    return std::make_pair(w.completed_at(), k.completed_at());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

TEST(CommandQueue, QueueIdValidated) {
  auto dev = Device::open();
  EXPECT_THROW(dev->command_queue(-1), CheckError);
  EXPECT_THROW(dev->command_queue(64), CheckError);
  EXPECT_EQ(dev->command_queue(63).id(), 63);
}

TEST(CommandQueue, CancelQueuesDropsUnstartedWorkOnStuckDevice) {
  // A deadlocked program leaves a backlog parked behind it. Failure
  // handling completes the hung head and pumps the queue, so a record
  // directly behind the hang still fires — the durable backlog is whatever
  // sits behind the NEXT command the pump starts (here a second hang) plus
  // any queue parked on an event that will now never be recorded. The owner
  // — the serving layer — cancels that backlog before tearing the device
  // down; cancelled commands never run and parked waits are unregistered.
  auto dev = Device::open();  // no watchdog: the hang surfaces as a deadlock
  auto make_hang = [] {
    Program p;
    p.create_semaphore(0, {0}, 0);
    p.create_kernel(
        KernelKind::kDataMover0, {0},
        [](DataMoverCtx& ctx) { ctx.semaphore_wait(0); }, "hang");
    return p;
  };
  Program hang1 = make_hang();
  Program hang2 = make_hang();
  auto& cq0 = dev->command_queue(0);
  auto& cq1 = dev->command_queue(1);
  cq0.enqueue_program(hang1, /*blocking=*/false);
  cq0.enqueue_program(hang2, /*blocking=*/false);
  Event gate = cq0.record_event();  // unstarted behind the second hang
  cq1.wait_for_event(gate);         // parks cq1 on the doomed event
  Program after;
  after.create_kernel(
      KernelKind::kDataMover0, {1}, [](DataMoverCtx&) {}, "after");
  cq1.enqueue_program(after, /*blocking=*/false);
  Event never = cq1.record_event();

  EXPECT_THROW(cq0.finish(), DeadlockError);

  // cq0's record + cq1's wait/program/record; the started hang stays.
  EXPECT_EQ(dev->cancel_queues(), 4u);
  EXPECT_FALSE(gate.completed());
  EXPECT_FALSE(never.completed());
  // With the backlog gone the other queues are empty: finish() returns
  // without replaying the hang.
  cq1.finish();
}

}  // namespace
}  // namespace ttsim::ttmetal
