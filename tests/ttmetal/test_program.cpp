#include "ttsim/ttmetal/program.hpp"

#include <gtest/gtest.h>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

TEST(Program, L1AddressesPlannedInCreationOrder) {
  Program p;
  const std::vector<int> cores{0};
  auto a = p.create_l1_buffer(cores, 100);
  p.create_cb(0, cores, 64, 4);  // 256 bytes
  auto b = p.create_l1_buffer(cores, 100);
  EXPECT_EQ(p.l1_buffer_address(a), 0u);
  // 100 -> aligned to 128; CB at 128..384; b at 384.
  EXPECT_EQ(p.l1_buffer_address(b), 384u);
}

TEST(Program, PlannedAddressesMatchRealAllocationAtLaunch) {
  auto dev = Device::open();
  Program p;
  const std::vector<int> cores{0};
  p.create_cb(0, cores, 2048, 4);
  auto l1 = p.create_l1_buffer(cores, 8192);
  std::uint32_t observed = 0;
  p.create_kernel(
      KernelKind::kDataMover0, cores,
      [&observed](DataMoverCtx& ctx) {
        // Write through the planned address; verify it maps into SRAM.
        ctx.l1_ptr(ctx.arg(0))[0] = std::byte{0xEE};
        observed = ctx.arg(0);
      },
      "probe");
  p.set_runtime_args(0, 0, {p.l1_buffer_address(l1)});
  dev->run_program(p);
  EXPECT_EQ(observed, p.l1_buffer_address(l1));
  EXPECT_EQ(dev->hw().worker(0).sram().data(observed)[0], std::byte{0xEE});
}

TEST(Program, RuntimeArgsForUnknownCoreRejected) {
  Program p;
  auto k = p.create_kernel(
      KernelKind::kDataMover0, {0, 1}, [](DataMoverCtx&) {}, "k");
  EXPECT_THROW(p.set_runtime_args(k, 7, {1}), CheckError);
}

TEST(Program, CommonRuntimeArgsApplyToAllCores) {
  auto dev = Device::open();
  Program p;
  std::vector<std::uint32_t> seen;
  auto k = p.create_kernel(
      KernelKind::kDataMover0, {0, 1, 2},
      [&seen](DataMoverCtx& ctx) { seen.push_back(ctx.arg(0)); }, "k");
  p.set_common_runtime_args(k, {42});
  dev->run_program(p);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{42, 42, 42}));
}

TEST(Program, PerCoreArgsOverrideCommon) {
  auto dev = Device::open();
  Program p;
  std::vector<std::uint32_t> seen(2);
  auto k = p.create_kernel(
      KernelKind::kDataMover0, {0, 1},
      [&seen](DataMoverCtx& ctx) {
        seen[static_cast<std::size_t>(ctx.position())] = ctx.arg(0);
      },
      "k");
  p.set_common_runtime_args(k, {1});
  p.set_runtime_args(k, 1, {2});
  dev->run_program(p);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 2u);
}

TEST(Program, ComputeKernelViaWrongOverloadRejected) {
  Program p;
  EXPECT_THROW(
      p.create_kernel(KernelKind::kCompute, {0}, DataMoverFn{[](DataMoverCtx&) {}}),
      CheckError);
}

TEST(Program, GroupSizeReportedToKernels) {
  auto dev = Device::open();
  Program p;
  int group = 0;
  p.create_kernel(
      KernelKind::kDataMover0, {3, 5, 9},
      [&group](DataMoverCtx& ctx) { group = ctx.group_size(); }, "k");
  dev->run_program(p);
  EXPECT_EQ(group, 3);
}

TEST(Program, CoreIdIsPhysicalWorkerIndex) {
  auto dev = Device::open();
  Program p;
  std::vector<int> ids;
  p.create_kernel(
      KernelKind::kDataMover0, {4, 17},
      [&ids](DataMoverCtx& ctx) { ids.push_back(ctx.core_id()); }, "k");
  dev->run_program(p);
  EXPECT_EQ(ids, (std::vector<int>{4, 17}));
}

TEST(Program, ReusableAcrossLaunches) {
  auto dev = Device::open();
  Program p;
  p.create_cb(0, {0}, 64, 2);
  int runs = 0;
  p.create_kernel(
      KernelKind::kDataMover0, {0},
      [&runs](DataMoverCtx& ctx) {
        ctx.cb_reserve_back(0, 1);
        ctx.cb_push_back(0, 1);
        ++runs;
      },
      "k");
  p.create_kernel(
      KernelKind::kDataMover1, {0},
      [](DataMoverCtx& ctx) {
        ctx.cb_wait_front(0, 1);
        ctx.cb_pop_front(0, 1);
      },
      "k2");
  dev->run_program(p);
  dev->run_program(p);  // cores reset between launches
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace ttsim::ttmetal
