#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "ttsim/bfloat/convert.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

/// End-to-end kernel tests: the canonical tt-metal pipeline of Fig. 3 —
/// reader data mover -> CBs -> compute/FPU -> CB -> writer data mover.

TEST(Kernels, ReaderMoverCopiesDramToDram) {
  auto dev = Device::open();
  const std::uint32_t n = 8192;
  auto src = dev->create_buffer({.size = n});
  auto dst = dev->create_buffer({.size = n});
  std::vector<std::byte> in(n);
  for (std::uint32_t i = 0; i < n; ++i) in[i] = static_cast<std::byte>(i * 31);
  dev->write_buffer(*src, in);

  Program prog;
  const std::vector<int> cores{0};
  auto l1 = prog.create_l1_buffer(cores, n);
  auto reader = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) {
        const std::uint64_t src_addr = ctx.arg64(0);
        const std::uint64_t dst_addr = ctx.arg64(2);
        const std::uint32_t size = ctx.arg(4);
        const std::uint32_t l1_addr = ctx.arg(5);
        ctx.noc_async_read(ctx.get_noc_addr(src_addr), l1_addr, size);
        ctx.noc_async_read_barrier();
        ctx.noc_async_write(l1_addr, ctx.get_noc_addr(dst_addr), size);
        ctx.noc_async_write_barrier();
      },
      "copy");
  std::vector<std::uint32_t> args;
  Program::push_arg64(args, src->address());
  Program::push_arg64(args, dst->address());
  args.push_back(n);
  args.push_back(prog.l1_buffer_address(l1));
  prog.set_runtime_args(reader, 0, args);
  dev->run_program(prog);

  std::vector<std::byte> out(n);
  dev->read_buffer(*dst, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), n), 0);
  EXPECT_GT(dev->last_kernel_duration(), 0);
}

TEST(Kernels, FullPipelineComputesJacobiStyleAverage) {
  // Mirrors Listing 2 on a single tile: out = 0.25*(a+b+c+d).
  auto dev = Device::open();
  const std::uint32_t elems = 1024;
  const std::uint32_t bytes = elems * 2;
  std::vector<std::shared_ptr<Buffer>> inputs;
  std::vector<float> expect(elems);
  for (int k = 0; k < 4; ++k) {
    auto buf = dev->create_buffer({.size = bytes});
    std::vector<float> vals(elems);
    for (std::uint32_t i = 0; i < elems; ++i) vals[i] = static_cast<float>(k + 1);
    const auto bf = to_bf16(vals);
    dev->write_buffer(*buf, std::as_bytes(std::span{bf}));
    inputs.push_back(buf);
  }
  for (std::uint32_t i = 0; i < elems; ++i) expect[i] = 0.25f * (1 + 2 + 3 + 4);
  auto out_buf = dev->create_buffer({.size = bytes});

  Program prog;
  const std::vector<int> cores{0};
  for (int cb = 0; cb < 4; ++cb) prog.create_cb(cb, cores, bytes, 4);
  prog.create_cb(4, cores, bytes, 1);   // cb_scalar (0.25)
  prog.create_cb(5, cores, bytes, 2);   // cb_intermediate
  prog.create_cb(16, cores, bytes, 4);  // cb_out0

  auto reader = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [bytes](DataMoverCtx& ctx) {
        // Fill the scalar CB once at startup, then feed the four inputs.
        ctx.cb_reserve_back(4, 1);
        auto* s = reinterpret_cast<bfloat16_t*>(ctx.l1_ptr(ctx.get_write_ptr(4)));
        for (std::uint32_t i = 0; i < 1024; ++i) s[i] = bfloat16_t{0.25f};
        ctx.cb_push_back(4, 1);
        for (int cb = 0; cb < 4; ++cb) {
          ctx.cb_reserve_back(cb, 1);
          ctx.noc_async_read(ctx.arg64(static_cast<std::size_t>(cb) * 2),
                             ctx.get_write_ptr(cb), bytes);
          ctx.noc_async_read_barrier();
          ctx.cb_push_back(cb, 1);
        }
      },
      "reader");
  auto compute = prog.create_kernel(
      cores,
      [](ComputeCtx& ctx) {
        constexpr int dst0 = 0;
        ctx.binary_op_init_common(0, 1);
        ctx.add_tiles_init(0, 1);
        // (a+b) -> intermediate
        ctx.cb_wait_front(0, 1);
        ctx.cb_wait_front(1, 1);
        ctx.add_tiles(0, 1, 0, 0, dst0);
        ctx.cb_pop_front(1, 1);
        ctx.cb_pop_front(0, 1);
        ctx.cb_reserve_back(5, 1);
        ctx.pack_tile(dst0, 5);
        ctx.cb_push_back(5, 1);
        // (+c) -> intermediate
        ctx.cb_wait_front(2, 1);
        ctx.cb_wait_front(5, 1);
        ctx.add_tiles(2, 5, 0, 0, dst0);
        ctx.cb_pop_front(5, 1);
        ctx.cb_pop_front(2, 1);
        ctx.cb_reserve_back(5, 1);
        ctx.pack_tile(dst0, 5);
        ctx.cb_push_back(5, 1);
        // (+d) -> intermediate
        ctx.cb_wait_front(3, 1);
        ctx.cb_wait_front(5, 1);
        ctx.add_tiles(3, 5, 0, 0, dst0);
        ctx.cb_pop_front(5, 1);
        ctx.cb_pop_front(3, 1);
        ctx.cb_reserve_back(5, 1);
        ctx.pack_tile(dst0, 5);
        ctx.cb_push_back(5, 1);
        // * 0.25 -> out
        ctx.cb_wait_front(4, 1);
        ctx.cb_wait_front(5, 1);
        ctx.mul_tiles(4, 5, 0, 0, dst0);
        ctx.cb_pop_front(5, 1);
        ctx.cb_reserve_back(16, 1);
        ctx.pack_tile(dst0, 16);
        ctx.cb_push_back(16, 1);
      },
      "compute");
  auto writer = prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [bytes](DataMoverCtx& ctx) {
        ctx.cb_wait_front(16, 1);
        ctx.noc_async_write(ctx.get_read_ptr(16), ctx.arg64(0), bytes);
        ctx.noc_async_write_barrier();
        ctx.cb_pop_front(16, 1);
      },
      "writer");

  std::vector<std::uint32_t> rargs;
  for (const auto& b : inputs) Program::push_arg64(rargs, b->address());
  prog.set_runtime_args(reader, 0, rargs);
  std::vector<std::uint32_t> wargs;
  Program::push_arg64(wargs, out_buf->address());
  prog.set_runtime_args(writer, 0, wargs);
  (void)compute;
  dev->run_program(prog);

  std::vector<bfloat16_t> result(elems);
  dev->read_buffer(*out_buf, std::as_writable_bytes(std::span{result}));
  for (std::uint32_t i = 0; i < elems; ++i) {
    EXPECT_EQ(static_cast<float>(result[i]), expect[i]) << "i=" << i;
  }
}

TEST(Kernels, SemaphoreCoordinatesMovers) {
  auto dev = Device::open();
  Program prog;
  const std::vector<int> cores{0};
  prog.create_semaphore(0, cores, 0);
  std::vector<SimTime> when(2, -1);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&when](DataMoverCtx& ctx) {
        ctx.semaphore_wait(0);
        when[0] = ctx.now();
      },
      "waiter");
  prog.create_kernel(
      KernelKind::kDataMover1, cores,
      [&when](DataMoverCtx& ctx) {
        ctx.spin(5 * kMicrosecond);
        when[1] = ctx.now();
        ctx.semaphore_post(0);
      },
      "poster");
  dev->run_program(prog);
  EXPECT_GE(when[0], when[1]);
  EXPECT_GT(when[0], 0);
}

TEST(Kernels, Listing4AlignedReadHandlesUnalignedAddresses) {
  // The paper's read_data fix: on faithful-alignment hardware, a direct
  // unaligned read corrupts; read_data_aligned recovers the right bytes.
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 4096});
  std::vector<std::byte> in(4096);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::byte>(i & 0xFF);
  dev->write_buffer(*buf, in);

  Program prog;
  const std::vector<int> cores{0};
  auto l1 = prog.create_l1_buffer(cores, 1024);
  std::vector<std::byte> direct(68), fixed(68);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&, base = buf->address()](DataMoverCtx& ctx) {
        const std::uint32_t l1_addr = ctx.arg(0);
        // Direct unaligned read (the paper's first attempt).
        ctx.noc_async_read(base + 34, l1_addr, 68);
        ctx.noc_async_read_barrier();
        std::memcpy(direct.data(), ctx.l1_ptr(l1_addr), 68);
        // Listing 4's aligned read.
        const std::uint32_t off =
            ctx.read_data_aligned(base + 34, base, 68, l1_addr);
        std::memcpy(fixed.data(), ctx.l1_ptr(l1_addr + off), 68);
      },
      "reader");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);

  EXPECT_NE(std::memcmp(direct.data(), in.data() + 34, 68), 0)
      << "unaligned read should corrupt on faithful hardware";
  EXPECT_EQ(std::memcmp(fixed.data(), in.data() + 34, 68), 0)
      << "Listing 4 must recover the intended bytes";
}

TEST(Kernels, L1MemcpyCostsSimulatedTime) {
  auto dev = Device::open();
  Program prog;
  const std::vector<int> cores{0};
  auto l1 = prog.create_l1_buffer(cores, 32 * KiB);
  SimTime cost = -1;
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&cost](DataMoverCtx& ctx) {
        const std::uint32_t a = ctx.arg(0);
        const SimTime t0 = ctx.now();
        ctx.l1_memcpy(a + 16 * KiB, a, 16 * KiB);
        cost = ctx.now() - t0;
      },
      "copier");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  // ~0.5us call + 16384 * 1.39ns ≈ 23.3 us — the Section V finding.
  EXPECT_NEAR(to_seconds(cost), 23.3e-6, 2e-6);
}

TEST(Kernels, MultiCoreKernelsRunConcurrently) {
  auto dev = Device::open();
  Program prog;
  std::vector<int> cores{0, 1, 2, 3};
  std::vector<int> positions;
  std::vector<SimTime> end_times(4);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&](DataMoverCtx& ctx) {
        positions.push_back(ctx.position());
        ctx.spin(1 * kMillisecond);
        end_times[static_cast<std::size_t>(ctx.position())] = ctx.now();
      },
      "spinner");
  dev->run_program(prog);
  EXPECT_EQ(positions.size(), 4u);
  // Concurrent: total runtime ~1 ms, not 4 ms.
  EXPECT_NEAR(to_seconds(dev->last_kernel_duration()), 1e-3, 1e-5);
}

TEST(Kernels, RuntimeArgsPerCore) {
  auto dev = Device::open();
  Program prog;
  std::vector<int> cores{0, 1, 2};
  std::vector<std::uint32_t> seen(3);
  auto k = prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&seen](DataMoverCtx& ctx) {
        seen[static_cast<std::size_t>(ctx.position())] = ctx.arg(0);
      },
      "args");
  for (int c : cores) prog.set_runtime_args(k, c, {static_cast<std::uint32_t>(c * 100)});
  dev->run_program(prog);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 100, 200}));
}

TEST(Kernels, MissingArgThrows) {
  auto dev = Device::open();
  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { (void)ctx.arg(0); },  // no args set
      "bad");
  EXPECT_THROW(dev->run_program(prog), ApiError);
}

TEST(Kernels, DeadlockedCbReportsProcessName) {
  auto dev = Device::open();
  Program prog;
  prog.create_cb(0, {0}, 64, 2);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.cb_wait_front(0, 1); },  // never produced
      "starved_reader");
  try {
    dev->run_program(prog);
    FAIL() << "expected deadlock";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("starved_reader"), std::string::npos);
  }
}

}  // namespace
}  // namespace ttsim::ttmetal
