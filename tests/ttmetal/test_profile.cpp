#include <gtest/gtest.h>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

TEST(Profile, ActiveVsStallSplitsLifetime) {
  auto dev = Device::open();
  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(3 * kMicrosecond);  // active
        ctx.semaphore_wait(0);       // stalled until dm1 posts
        ctx.spin(1 * kMicrosecond);  // active
      },
      "worker");
  prog.create_kernel(
      KernelKind::kDataMover1, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(10 * kMicrosecond);
        ctx.semaphore_post(0);
      },
      "poster");
  dev->run_program(prog);
  const auto& prof = dev->last_profile();
  ASSERT_EQ(prof.size(), 2u);
  EXPECT_EQ(prof[0].name, "worker");
  // Worker: ~4 us active of ~11 us lifetime.
  EXPECT_NEAR(to_seconds(prof[0].active), 4e-6, 1e-7);
  EXPECT_GT(prof[0].lifetime, prof[0].active * 2);
  EXPECT_LT(prof[0].utilisation(), 0.5);
  // Poster: fully active until its post.
  EXPECT_GT(prof[1].utilisation(), 0.9);
}

TEST(Profile, OneEntryPerKernelInstance) {
  auto dev = Device::open();
  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {0, 1, 2},
      [](DataMoverCtx& ctx) { ctx.spin(1 * kMicrosecond); }, "spin");
  prog.create_kernel(
      {4, 5}, [](ComputeCtx& ctx) { ctx.spin(1 * kMicrosecond); }, "cspin");
  dev->run_program(prog);
  ASSERT_EQ(dev->last_profile().size(), 5u);
  EXPECT_EQ(dev->last_profile()[3].name, "cspin");
  EXPECT_EQ(dev->last_profile()[3].core, 4);
}

TEST(Profile, ClearedBetweenRuns) {
  auto dev = Device::open();
  Program a;
  a.create_kernel(
      KernelKind::kDataMover0, {0, 1}, [](DataMoverCtx&) {}, "a");
  dev->run_program(a);
  EXPECT_EQ(dev->last_profile().size(), 2u);
  Program b;
  b.create_kernel(
      KernelKind::kDataMover0, {0}, [](DataMoverCtx&) {}, "b");
  dev->run_program(b);
  ASSERT_EQ(dev->last_profile().size(), 1u);
  EXPECT_EQ(dev->last_profile()[0].name, "b");
}

TEST(Profile, PartialProfileRetainedWhenWatchdogFires) {
  // The last_profile contract on a failed run: cleared on entry (the earlier
  // program's entries are gone), finished kernels keep their final numbers,
  // unfinished ones carry finished == false, the activity charged so far and
  // a lifetime clamped at the failure time.
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});

  Program warmup;
  warmup.create_kernel(
      KernelKind::kDataMover0, {0, 1, 2}, [](DataMoverCtx&) {}, "warmup");
  dev->run_program(warmup);
  ASSERT_EQ(dev->last_profile().size(), 3u);

  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(1 * kMicrosecond);
        ctx.semaphore_wait(0);  // never posted
      },
      "stuck");
  prog.create_kernel(
      KernelKind::kDataMover1, {0},
      [](DataMoverCtx& ctx) { ctx.spin(5 * kMicrosecond); }, "clean");
  EXPECT_THROW(dev->run_program(prog), DeviceTimeoutError);

  const auto& prof = dev->last_profile();
  ASSERT_EQ(prof.size(), 2u);  // cleared on entry: no warmup entries
  EXPECT_EQ(prof[0].name, "stuck");
  EXPECT_FALSE(prof[0].finished);
  EXPECT_NEAR(to_seconds(prof[0].active), 1e-6, 1e-8);
  // Lifetime clamped at failure time: the queue drained when "clean" ended.
  EXPECT_NEAR(to_seconds(prof[0].lifetime), 5e-6, 1e-7);
  EXPECT_EQ(prof[1].name, "clean");
  EXPECT_TRUE(prof[1].finished);
  EXPECT_NEAR(to_seconds(prof[1].lifetime), 5e-6, 1e-7);
}

TEST(Profile, ComputeKernelSplitsFpuBusyFromCbWait) {
  // A compute kernel starved by a slow producer: its profile must separate
  // (a) FPU occupancy — part of `active`, the kernel's genuine work — from
  // (b) CB-wait time — part of the stalled remainder. Historically the FPU
  // charged the engine directly and bypassed `active` entirely, so a
  // pure-FPU kernel profiled as 100% stalled.
  constexpr int kTiles = 4;
  constexpr std::uint32_t kTileBytes = 32 * 32 * 2;  // one BF16 tile

  auto dev = Device::open();
  Program prog;
  prog.create_cb(0, {0}, kTileBytes, 2);
  prog.create_cb(16, {0}, kTileBytes, kTiles);  // deep enough to never block
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        for (int i = 0; i < kTiles; ++i) {
          ctx.spin(2 * kMicrosecond);  // pace the pipeline: consumer starves
          ctx.cb_reserve_back(0, 1);
          ctx.cb_push_back(0, 1);
        }
      },
      "producer");
  prog.create_kernel(
      {0},
      [](ComputeCtx& ctx) {
        for (int i = 0; i < kTiles; ++i) {
          ctx.cb_wait_front(0, 1);  // starved ~2 us per tile
          ctx.copy_tile(0, 0, 0);
          ctx.abs_tile(0);
          ctx.cb_reserve_back(16, 1);
          ctx.pack_tile(0, 16);
          ctx.cb_push_back(16, 1);
          ctx.cb_pop_front(0, 1);
        }
      },
      "math");
  dev->run_program(prog);

  const auto& prof = dev->last_profile();
  ASSERT_EQ(prof.size(), 2u);
  ASSERT_EQ(prof[1].name, "math");
  const KernelProfile& math = prof[1];

  // FPU time exists and is accounted inside `active`.
  EXPECT_GT(math.fpu_busy, 0);
  EXPECT_LE(math.fpu_busy, math.active);
  // CB starvation exists, is *not* inside `active`, and both fit in the
  // lifetime side by side.
  EXPECT_GT(math.cb_wait, 0);
  EXPECT_LE(math.active + math.cb_wait, math.lifetime);
  // The producer paces the pipeline at 2 us/tile, so starvation dominates
  // this kernel's lifetime — the utilisation split is meaningful, not noise.
  EXPECT_GT(math.cb_wait, math.active);
  EXPECT_GT(to_seconds(math.cb_wait), 4e-6);

  // The producer never blocks on its CB (the consumer drains faster than it
  // fills): its cb_wait stays zero while its spins land in `active`.
  const KernelProfile& producer = prof[0];
  EXPECT_EQ(producer.cb_wait, 0);
  EXPECT_NEAR(to_seconds(producer.active), 8e-6, 1e-6);
}

}  // namespace
}  // namespace ttsim::ttmetal
