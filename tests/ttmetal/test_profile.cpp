#include <gtest/gtest.h>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

TEST(Profile, ActiveVsStallSplitsLifetime) {
  auto dev = Device::open();
  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(3 * kMicrosecond);  // active
        ctx.semaphore_wait(0);       // stalled until dm1 posts
        ctx.spin(1 * kMicrosecond);  // active
      },
      "worker");
  prog.create_kernel(
      KernelKind::kDataMover1, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(10 * kMicrosecond);
        ctx.semaphore_post(0);
      },
      "poster");
  dev->run_program(prog);
  const auto& prof = dev->last_profile();
  ASSERT_EQ(prof.size(), 2u);
  EXPECT_EQ(prof[0].name, "worker");
  // Worker: ~4 us active of ~11 us lifetime.
  EXPECT_NEAR(to_seconds(prof[0].active), 4e-6, 1e-7);
  EXPECT_GT(prof[0].lifetime, prof[0].active * 2);
  EXPECT_LT(prof[0].utilisation(), 0.5);
  // Poster: fully active until its post.
  EXPECT_GT(prof[1].utilisation(), 0.9);
}

TEST(Profile, OneEntryPerKernelInstance) {
  auto dev = Device::open();
  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {0, 1, 2},
      [](DataMoverCtx& ctx) { ctx.spin(1 * kMicrosecond); }, "spin");
  prog.create_kernel(
      {4, 5}, [](ComputeCtx& ctx) { ctx.spin(1 * kMicrosecond); }, "cspin");
  dev->run_program(prog);
  ASSERT_EQ(dev->last_profile().size(), 5u);
  EXPECT_EQ(dev->last_profile()[3].name, "cspin");
  EXPECT_EQ(dev->last_profile()[3].core, 4);
}

TEST(Profile, ClearedBetweenRuns) {
  auto dev = Device::open();
  Program a;
  a.create_kernel(
      KernelKind::kDataMover0, {0, 1}, [](DataMoverCtx&) {}, "a");
  dev->run_program(a);
  EXPECT_EQ(dev->last_profile().size(), 2u);
  Program b;
  b.create_kernel(
      KernelKind::kDataMover0, {0}, [](DataMoverCtx&) {}, "b");
  dev->run_program(b);
  ASSERT_EQ(dev->last_profile().size(), 1u);
  EXPECT_EQ(dev->last_profile()[0].name, "b");
}

TEST(Profile, PartialProfileRetainedWhenWatchdogFires) {
  // The last_profile contract on a failed run: cleared on entry (the earlier
  // program's entries are gone), finished kernels keep their final numbers,
  // unfinished ones carry finished == false, the activity charged so far and
  // a lifetime clamped at the failure time.
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});

  Program warmup;
  warmup.create_kernel(
      KernelKind::kDataMover0, {0, 1, 2}, [](DataMoverCtx&) {}, "warmup");
  dev->run_program(warmup);
  ASSERT_EQ(dev->last_profile().size(), 3u);

  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.spin(1 * kMicrosecond);
        ctx.semaphore_wait(0);  // never posted
      },
      "stuck");
  prog.create_kernel(
      KernelKind::kDataMover1, {0},
      [](DataMoverCtx& ctx) { ctx.spin(5 * kMicrosecond); }, "clean");
  EXPECT_THROW(dev->run_program(prog), DeviceTimeoutError);

  const auto& prof = dev->last_profile();
  ASSERT_EQ(prof.size(), 2u);  // cleared on entry: no warmup entries
  EXPECT_EQ(prof[0].name, "stuck");
  EXPECT_FALSE(prof[0].finished);
  EXPECT_NEAR(to_seconds(prof[0].active), 1e-6, 1e-8);
  // Lifetime clamped at failure time: the queue drained when "clean" ended.
  EXPECT_NEAR(to_seconds(prof[0].lifetime), 5e-6, 1e-7);
  EXPECT_EQ(prof[1].name, "clean");
  EXPECT_TRUE(prof[1].finished);
  EXPECT_NEAR(to_seconds(prof[1].lifetime), 5e-6, 1e-7);
}

}  // namespace
}  // namespace ttsim::ttmetal
