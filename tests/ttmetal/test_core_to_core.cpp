/// \file test_core_to_core.cpp
/// Tests for the SDK extensions backing the SRAM-resident solver: direct
/// core-to-core L1 writes, remote semaphore increments, CB write-pointer
/// aliasing, and scalar L1 stores.

#include <gtest/gtest.h>

#include <cstring>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

TEST(CoreToCore, WriteLandsInTargetCoreSram) {
  auto dev = Device::open();
  Program prog;
  const std::vector<int> cores{0, 1};
  auto l1 = prog.create_l1_buffer(cores, 256);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) {
        const std::uint32_t buf = ctx.arg(0);
        if (ctx.position() == 0) {
          for (int i = 0; i < 64; ++i) ctx.l1_ptr(buf)[i] = std::byte{0xA5};
          ctx.noc_async_write_core(1, buf, buf, 64);
          ctx.noc_async_write_barrier();
        }
      },
      "sender");
  prog.set_common_runtime_args(0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  const auto* dst = dev->hw().worker(1).sram().data(prog.l1_buffer_address(l1));
  EXPECT_EQ(dst[0], std::byte{0xA5});
  EXPECT_EQ(dst[63], std::byte{0xA5});
}

TEST(CoreToCore, WriteSnapshotsSource) {
  auto dev = Device::open();
  Program prog;
  const std::vector<int> cores{0, 1};
  auto l1 = prog.create_l1_buffer(cores, 64);
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [](DataMoverCtx& ctx) {
        const std::uint32_t buf = ctx.arg(0);
        if (ctx.position() == 0) {
          ctx.l1_ptr(buf)[0] = std::byte{0x11};
          ctx.noc_async_write_core(1, buf, buf, 1);
          ctx.l1_ptr(buf)[0] = std::byte{0xFF};  // after issue: must not leak
          ctx.noc_async_write_barrier();
        }
      },
      "sender");
  prog.set_common_runtime_args(0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  EXPECT_EQ(dev->hw().worker(1).sram().data(prog.l1_buffer_address(l1))[0],
            std::byte{0x11});
}

TEST(CoreToCore, WritePastTargetSramRejected) {
  auto dev = Device::open();
  Program prog;
  auto l1 = prog.create_l1_buffer({0}, 64);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.noc_async_write_core(1, 1024 * 1024 - 16, ctx.arg(0), 64);
      },
      "overwrite");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  EXPECT_THROW(dev->run_program(prog), CheckError);
}

TEST(CoreToCore, RemoteSemaphoreUnblocksNeighbour) {
  auto dev = Device::open();
  Program prog;
  prog.create_semaphore(0, {0, 1}, 0);
  std::vector<SimTime> when(2, -1);
  prog.create_kernel(
      KernelKind::kDataMover0, {0, 1},
      [&when](DataMoverCtx& ctx) {
        if (ctx.position() == 0) {
          ctx.spin(3 * kMicrosecond);
          when[0] = ctx.now();
          ctx.noc_semaphore_inc(1, 0);
        } else {
          ctx.semaphore_wait(0);
          when[1] = ctx.now();
        }
      },
      "pair");
  dev->run_program(prog);
  // The waiter wakes after the poster's increment plus NoC latency.
  EXPECT_GT(when[1], when[0]);
}

TEST(CoreToCore, SemaphoreIncOrderedBehindWrites) {
  // tt-metal semantics: the increment must not overtake an earlier write on
  // the same NoC — the receiver observing the semaphore sees the data.
  auto dev = Device::open();
  Program prog;
  const std::vector<int> cores{0, 1};
  prog.create_semaphore(0, cores, 0);
  auto l1 = prog.create_l1_buffer(cores, 64 * 1024);
  std::byte observed{};
  prog.create_kernel(
      KernelKind::kDataMover0, cores,
      [&observed](DataMoverCtx& ctx) {
        const std::uint32_t buf = ctx.arg(0);
        if (ctx.position() == 0) {
          std::memset(ctx.l1_ptr(buf), 0x42, 64 * 1024);
          ctx.noc_async_write_core(1, buf, buf, 64 * 1024);  // slow transfer
          ctx.noc_semaphore_inc(1, 0);                       // no barrier!
        } else {
          ctx.semaphore_wait(0);
          observed = ctx.l1_ptr(buf + 64 * 1024 - 1)[0];  // last byte
        }
      },
      "ordered");
  prog.set_common_runtime_args(0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  EXPECT_EQ(observed, std::byte{0x42});
}

TEST(CbWritePtr, PackLandsAtOverride) {
  auto dev = Device::open();
  Program prog;
  prog.create_cb(0, {0}, 2048, 2);   // source tile
  prog.create_cb(16, {0}, 2048, 1);  // pack vehicle
  auto l1 = prog.create_l1_buffer({0}, 4096);
  prog.create_kernel(
      {0},
      [](ComputeCtx& ctx) {
        ctx.cb_wait_front(0, 1);
        ctx.copy_tile(0, 0, 0);
        ctx.cb_pop_front(0, 1);
        ctx.cb_set_wr_ptr(16, ctx.arg(0) + 128);
        ctx.pack_tile(0, 16);
      },
      "packer");
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.cb_reserve_back(0, 1);
        auto* p = reinterpret_cast<bfloat16_t*>(ctx.l1_ptr(ctx.get_write_ptr(0)));
        for (int i = 0; i < 1024; ++i) p[i] = bfloat16_t{7.0f};
        ctx.cb_push_back(0, 1);
      },
      "feeder");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  const auto* out = reinterpret_cast<const bfloat16_t*>(
      dev->hw().worker(0).sram().data(prog.l1_buffer_address(l1) + 128));
  EXPECT_EQ(static_cast<float>(out[0]), 7.0f);
  EXPECT_EQ(static_cast<float>(out[1023]), 7.0f);
}

TEST(CbWritePtr, OverrideClearedByPush) {
  auto dev = Device::open();
  auto& core = dev->hw().worker(0);
  auto& cb = core.create_cb(0, 64, 2);
  std::vector<std::byte> elsewhere(64);
  cb.set_write_ptr(elsewhere.data());
  EXPECT_TRUE(cb.has_write_ptr_override());
  EXPECT_EQ(cb.write_ptr(), elsewhere.data());
  dev->hw().engine().spawn("p", [&] {
    cb.reserve_back(1);
    cb.push_back(1);
  });
  dev->hw().engine().run();
  EXPECT_FALSE(cb.has_write_ptr_override());
}

TEST(L1Store, SingleScalarStore) {
  auto dev = Device::open();
  Program prog;
  auto l1 = prog.create_l1_buffer({0}, 64);
  SimTime cost = -1;
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [&cost](DataMoverCtx& ctx) {
        const SimTime t0 = ctx.now();
        ctx.l1_store_u16(ctx.arg(0) + 10, 0xBEEF);
        cost = ctx.now() - t0;
      },
      "store");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);
  std::uint16_t v = 0;
  std::memcpy(&v, dev->hw().worker(0).sram().data(prog.l1_buffer_address(l1) + 10), 2);
  EXPECT_EQ(v, 0xBEEF);
  // A couple of core cycles, not a memcpy-call cost.
  EXPECT_LT(cost, 10 * kNanosecond);
}

}  // namespace
}  // namespace ttsim::ttmetal
