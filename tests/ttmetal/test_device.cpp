#include "ttsim/ttmetal/device.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace ttsim::ttmetal {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  return v;
}

TEST(Device, OpensWith108Workers) {
  auto dev = Device::open();
  EXPECT_EQ(dev->num_workers(), 108);
}

TEST(Device, BufferRoundTripThroughPcie) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 64 * KiB});
  const auto in = pattern(64 * KiB);
  dev->write_buffer(*buf, in);
  std::vector<std::byte> out(64 * KiB);
  dev->read_buffer(*buf, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST(Device, PcieTransfersAdvanceSimulatedTime) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 100 * MiB});
  const SimTime t0 = dev->now();
  std::vector<std::byte> data(100 * MiB);
  dev->write_buffer(*buf, data);
  const SimTime dt = dev->now() - t0;
  // 100 MiB at 20 GB/s ≈ 5.24 ms plus latency.
  EXPECT_NEAR(to_seconds(dt), 0.00525, 0.0005);
  EXPECT_EQ(dev->pcie_time(), dt);
}

TEST(Device, DistinctBuffersLandInDistinctBanks) {
  auto dev = Device::open();
  auto a = dev->create_buffer({.size = 1024});
  auto b = dev->create_buffer({.size = 1024});
  EXPECT_NE(a->bank(), b->bank());
  EXPECT_NE(a->address(), b->address());
}

TEST(Device, ExplicitBankHonoured) {
  auto dev = Device::open();
  auto a = dev->create_buffer({.size = 1024, .bank = 5});
  EXPECT_EQ(a->bank(), 5);
  EXPECT_EQ(a->address() / dev->spec().dram_bank_bytes, 5u);
}

TEST(Device, BankExhaustionThrows) {
  auto dev = Device::open();
  auto big = dev->create_buffer({.size = 1000 * MiB, .bank = 0});
  EXPECT_THROW(dev->create_buffer({.size = 100 * MiB, .bank = 0}), ApiError);
}

TEST(Device, InterleavedBufferRoundTrip) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 1 * MiB,
                                 .layout = BufferLayout::kInterleaved,
                                 .page_size = 4 * KiB});
  const auto in = pattern(1 * MiB, 7);
  dev->write_buffer(*buf, in);
  std::vector<std::byte> out(1 * MiB);
  dev->read_buffer(*buf, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST(Device, InterleavedPageSizeValidated) {
  auto dev = Device::open();
  EXPECT_THROW(dev->create_buffer({.size = 1024,
                                   .layout = BufferLayout::kInterleaved,
                                   .page_size = 128 * KiB}),
               ApiError);
}

TEST(Device, PartialBufferOffsetAccess) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 4096});
  const auto in = pattern(256, 3);
  dev->write_buffer(*buf, in, /*offset=*/1024);
  std::vector<std::byte> out(256);
  dev->read_buffer(*buf, out, 1024);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 256), 0);
}

TEST(Device, OutOfRangeAccessThrows) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 1024, .name = "grid-u"});
  std::vector<std::byte> data(512);
  EXPECT_THROW(dev->write_buffer(*buf, data, 600), ApiError);
  // The error names the buffer, the offset and the sizes so an async failure
  // identifies which in-flight transfer it was.
  try {
    dev->write_buffer(*buf, data, 600);
    FAIL() << "expected ApiError";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("grid-u"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 600"), std::string::npos) << what;
    EXPECT_NE(what.find("512"), std::string::npos) << what;
  }
  std::vector<std::byte> out(2048);
  EXPECT_THROW(dev->read_buffer(*buf, out), ApiError);
}

TEST(Device, BufferReleaseUnmapsRegion) {
  auto dev = Device::open();
  std::uint64_t addr = 0;
  {
    auto buf = dev->create_buffer({.size = 1024, .bank = 2});
    addr = buf->address();
  }
  std::byte b{};
  EXPECT_THROW(dev->hw().dram().host_read(addr, &b, 1), ApiError);
}

TEST(Device, IndependentDevicesHaveIndependentClocks) {
  auto a = Device::open();
  auto b = Device::open();
  auto buf = a->create_buffer({.size = 10 * MiB});
  std::vector<std::byte> data(10 * MiB);
  a->write_buffer(*buf, data);
  EXPECT_GT(a->now(), 0);
  EXPECT_EQ(b->now(), 0);
}

TEST(Device, SimErrorTaxonomyClassifiesRetryability) {
  // Every fault the serving layer can see at harvest implements SimError;
  // one catch plus retryable() replaces per-type handling. Timeouts,
  // transfer-retry exhaustion and engine deadlocks survive a card reopen;
  // a violated invariant does not.
  EXPECT_TRUE(DeviceTimeoutError("watchdog").retryable());
  EXPECT_TRUE(TransferError("checksum").retryable());
  EXPECT_TRUE(DeadlockError("drained").retryable());
  EXPECT_FALSE(CheckError("invariant").retryable());

  try {
    throw DeviceTimeoutError("watchdog fired");
  } catch (const SimError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_STREQ(e.what(), "watchdog fired");
  }
  try {
    throw DeadlockError("event queue drained");
  } catch (const CheckError& e) {  // existing catch sites keep working
    EXPECT_TRUE(e.retryable());
  }
}

}  // namespace
}  // namespace ttsim::ttmetal
