/// \file test_failure_injection.cpp
/// Failure-injection tests: the simulator must turn kernel bugs into crisp,
/// attributable diagnostics instead of silent corruption or hangs — the
/// development experience the paper describes (alignment faults, deadlocks,
/// SRAM exhaustion) should be reproducible and debuggable here.

#include <gtest/gtest.h>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {
namespace {

TEST(FailureInjection, KernelExceptionSurfacesWithContext) {
  auto dev = Device::open();
  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {3},
      [](DataMoverCtx&) { throw std::runtime_error("simulated kernel fault"); },
      "faulty");
  EXPECT_THROW(dev->run_program(prog), std::runtime_error);
}

TEST(FailureInjection, MismatchedCbProtocolDetected) {
  // Popping more pages than were committed is a protocol bug.
  auto dev = Device::open();
  Program prog;
  prog.create_cb(0, {0}, 64, 4);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) {
        ctx.cb_reserve_back(0, 1);
        ctx.cb_push_back(0, 1);
        ctx.cb_pop_front(0, 1);
        ctx.cb_pop_front(0, 1);  // nothing left
      },
      "protocol_bug");
  try {
    dev->run_program(prog);
    FAIL() << "expected CB protocol violation";
  } catch (const CheckError& e) {
    // The structured accessors pin the failure to its check site — no
    // string-matching what() needed.
    EXPECT_FALSE(e.expr().empty());
    EXPECT_NE(e.file().find("circular_buffer"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_NE(std::string(e.what()).find(e.expr()), std::string::npos);
  }
}

TEST(FailureInjection, CrossCoreDeadlockNamesAllStuckKernels) {
  // Two cores each waiting on a semaphore the other never posts; the
  // DeviceConfig watchdog turns the hang into a typed timeout naming every
  // stuck kernel.
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});
  Program prog;
  prog.create_semaphore(0, {0, 1}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0, 1},
      [](DataMoverCtx& ctx) { ctx.semaphore_wait(0); }, "stuck_pair");
  try {
    dev->run_program(prog);
    FAIL() << "expected watchdog timeout";
  } catch (const DeviceTimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck_pair@0"), std::string::npos);
    EXPECT_NE(what.find("stuck_pair@1"), std::string::npos);
  }
  // The hung kernels still hold their cores: the device is wedged.
  Program again;
  again.create_kernel(
      KernelKind::kDataMover0, {2}, [](DataMoverCtx&) {}, "after_timeout");
  EXPECT_THROW(dev->run_program(again), ApiError);
}

TEST(FailureInjection, PartialBarrierArrivalDeadlocks) {
  // A barrier sized for 4 participants with only 2 arriving must trip the
  // watchdog, not silently release.
  auto dev = Device::open({}, {.sim_time_limit = 50 * kMillisecond});
  Program prog;
  prog.create_global_barrier(0, 4);
  prog.create_kernel(
      KernelKind::kDataMover0, {0, 1},
      [](DataMoverCtx& ctx) { ctx.global_barrier(0); }, "under_subscribed");
  EXPECT_THROW(dev->run_program(prog), DeviceTimeoutError);
}

TEST(FailureInjection, DeadlockWithoutWatchdogStillSurfacesAsCheckError) {
  // Without a sim_time_limit the engine's deadlock detector remains the
  // backstop (the pre-watchdog behaviour).
  auto dev = Device::open();
  Program prog;
  prog.create_semaphore(0, {0}, 0);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.semaphore_wait(0); }, "stuck_solo");
  EXPECT_THROW(dev->run_program(prog), CheckError);
}

TEST(FailureInjection, SramExhaustionReportsBudget) {
  auto dev = Device::open();
  Program prog;
  // Ask for more than the 1 MB SRAM in CBs.
  prog.create_cb(0, {0}, 64 * 1024, 20);
  prog.create_kernel(
      KernelKind::kDataMover0, {0}, [](DataMoverCtx&) {}, "oversized");
  try {
    dev->run_program(prog);
    FAIL() << "expected SRAM exhaustion";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("SRAM exhausted"), std::string::npos);
  }
}

TEST(FailureInjection, ReadPastBufferEndDetected) {
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 1024});
  Program prog;
  auto l1 = prog.create_l1_buffer({0}, 4096);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [addr = buf->address(), l1](DataMoverCtx& ctx) {
        (void)l1;
        ctx.noc_async_read(ctx.get_noc_addr(addr + 1000), ctx.arg(0), 512);
        ctx.noc_async_read_barrier();
      },
      "overread");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  EXPECT_THROW(dev->run_program(prog), ApiError);
}

TEST(FailureInjection, UseOfUnconfiguredCbDetected) {
  auto dev = Device::open();
  Program prog;
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [](DataMoverCtx& ctx) { ctx.cb_reserve_back(7, 1); }, "no_such_cb");
  EXPECT_THROW(dev->run_program(prog), ApiError);
}

TEST(FailureInjection, UnalignedWriteCorruptionIsObservable) {
  // The Section IV-B bug as a regression test: a kernel writing result
  // tiles to unaligned addresses produces observably wrong DRAM contents
  // (not an error — exactly the silent corruption the paper hit).
  auto dev = Device::open();
  auto buf = dev->create_buffer({.size = 4096});
  std::vector<std::byte> zero(4096, std::byte{0});
  dev->write_buffer(*buf, zero);

  Program prog;
  auto l1 = prog.create_l1_buffer({0}, 256);
  prog.create_kernel(
      KernelKind::kDataMover0, {0},
      [addr = buf->address()](DataMoverCtx& ctx) {
        auto* p = ctx.l1_ptr(ctx.arg(0));
        for (int i = 0; i < 64; ++i) p[i] = std::byte{0xCD};
        // Unaligned, non-contiguous: lands at the aligned-down address.
        ctx.noc_async_write(ctx.arg(0), ctx.get_noc_addr(addr + 50), 64);
        ctx.noc_async_write_barrier();
      },
      "unaligned_writer");
  prog.set_runtime_args(0, 0, {prog.l1_buffer_address(l1)});
  dev->run_program(prog);

  std::vector<std::byte> out(4096);
  dev->read_buffer(*buf, out);
  EXPECT_EQ(out[32], std::byte{0xCD});  // misplaced to align_down(50) = 32
  EXPECT_EQ(out[50 + 63], std::byte{0});  // intended tail never written
  EXPECT_EQ(dev->hw().dram().stats().unaligned_writes_corrupted, 1u);
}

TEST(FailureInjection, RunUntilBoundsHungSimulations) {
  // A watchdog pattern: bound a potentially-hung program in simulated time.
  auto dev = Device::open();
  auto& engine = dev->hw().engine();
  engine.spawn("spinner", [&engine] {
    for (;;) engine.delay(1 * kMillisecond);
  });
  EXPECT_FALSE(engine.run_until(engine.now() + 50 * kMillisecond));
  EXPECT_EQ(engine.unfinished_process_count(), 1u);
}

}  // namespace
}  // namespace ttsim::ttmetal
