/// \file test_resilience.cpp
/// End-to-end resilience tests: solves that survive injected faults
/// (mid-solve core failures, transient PCIe corruption), the determinism of
/// the fault trace (same seed => byte-identical), and the failure paths when
/// recovery is disabled or exhausted.

#include <gtest/gtest.h>

#include "ttsim/core/resilience.hpp"
#include "ttsim/sim/fault.hpp"

namespace ttsim::core {
namespace {

JacobiProblem small_problem(std::uint32_t w, std::uint32_t h, int iters) {
  JacobiProblem p;
  p.width = w;
  p.height = h;
  p.iterations = iters;
  return p;
}

/// The acceptance scenario: a Table-VIII-shaped solve (contiguous X strips,
/// striped banks, multi-core) hit by a whole-core failure mid-solve plus
/// transient PCIe corruption. The solve must complete, verify bit-exactly
/// against the CPU reference, report its retries/restarts, and produce a
/// byte-identical fault trace when re-run with the same seed.
TEST(Resilience, SolveSurvivesCoreFailureAndPcieCorruption) {
  const auto p = small_problem(1024, 96, 12);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kRowChunk;
  cfg.cores_y = 4;
  cfg.cores_x = 1;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
  cfg.verify = true;
  ResilienceOptions opts;
  opts.checkpoint_every = 4;
  // A 4-worker card: losing a core then forces a genuine shrink of the
  // decomposition (on the full 108-worker e150 the remap would simply pick a
  // spare worker instead).
  sim::GrayskullSpec spec;
  spec.worker_cores = 4;

  // Calibrate the kill time off a fault-free run so it lands mid-solve.
  const auto clean = run_jacobi_resilient(p, cfg, opts, nullptr, spec);
  ASSERT_TRUE(clean.verified_ok);
  EXPECT_EQ(clean.restarts, 0);
  EXPECT_EQ(clean.transfer_retries, 0);
  EXPECT_EQ(clean.cores_used, 4);
  EXPECT_TRUE(clean.fault_summary.empty());

  sim::FaultConfig fc;
  fc.seed = 7;
  fc.pcie_corrupt_prob = 0.25;
  fc.core_kills = {{.core = 2, .at = clean.total_time / 2}};

  const auto run = [&] {
    return run_jacobi_resilient(p, cfg, opts,
                                std::make_shared<sim::FaultPlan>(fc), spec);
  };
  const auto a = run();
  EXPECT_TRUE(a.verified_ok);             // recovered solve is still bit-exact
  EXPECT_GE(a.restarts, 1);               // the core kill cost a generation
  EXPECT_GE(a.transfer_retries, 1);       // corruption was caught and retried
  EXPECT_EQ(a.cores_used, 3);             // remapped around the dead core
  EXPECT_GT(a.iterations_replayed, 0);
  EXPECT_GT(a.total_time, clean.total_time);
  EXPECT_FALSE(a.fault_summary.empty());
  EXPECT_NE(a.fault_summary.find("core-failure"), std::string::npos);
  EXPECT_NE(a.fault_summary.find("pcie-corrupt"), std::string::npos);

  // Same seed, same workload: the whole faulted run reproduces exactly.
  const auto b = run();
  EXPECT_EQ(a.fault_summary, b.fault_summary);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.solution, b.solution);
}

/// Timing-only faults (mover stalls, NoC delays) perturb the schedule but
/// not the arithmetic: the solve still verifies, and two runs with the same
/// seed log byte-identical traces.
TEST(Resilience, SameSeedGivesByteIdenticalFaultTrace) {
  const auto p = small_problem(256, 48, 6);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kRowChunk;
  cfg.cores_y = 2;
  cfg.verify = true;

  sim::FaultConfig fc;
  fc.seed = 11;
  fc.mover_stall_prob = 0.05;
  fc.noc_delay_prob = 0.05;

  std::string traces[2];
  for (auto& trace : traces) {
    ttmetal::DeviceConfig dc;
    dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
    auto dev = ttmetal::Device::open({}, dc);
    const auto r = run_jacobi_on_device(*dev, p, cfg);
    EXPECT_TRUE(r.verified_ok);
    trace = dev->fault_plan()->trace_string();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

/// A core failure during the SRAM-resident solve (paper Section VIII
/// proposal): the halo-exchange ring is rebuilt over the surviving cores by
/// the logical->physical remap, and the recovered solve stays bit-exact.
TEST(Resilience, SramResidentSolveSurvivesCoreFailure) {
  const auto p = small_problem(64, 64, 8);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kSramResident;
  cfg.cores_y = 4;
  cfg.verify = true;
  ResilienceOptions opts;
  opts.checkpoint_every = 4;
  sim::GrayskullSpec spec;
  spec.worker_cores = 4;  // no spare workers: the ring must shrink

  const auto clean = run_jacobi_resilient(p, cfg, opts, nullptr, spec);
  ASSERT_TRUE(clean.verified_ok);

  sim::FaultConfig fc;
  fc.seed = 3;
  // Kill a *middle* core mid-solve: both neighbours lose their halo partner,
  // and the rebuilt ring {0, 1, 3} is non-contiguous in physical ids.
  fc.core_kills = {{.core = 2, .at = clean.total_time / 2}};
  const auto r = run_jacobi_resilient(p, cfg, opts,
                                      std::make_shared<sim::FaultPlan>(fc), spec);
  EXPECT_TRUE(r.verified_ok);
  EXPECT_GE(r.restarts, 1);
  EXPECT_EQ(r.cores_used, 3);
  EXPECT_NE(r.fault_summary.find("core-failure"), std::string::npos);
  EXPECT_NE(r.fault_summary.find(" core=2"), std::string::npos);
}

/// Unrecoverable corruption (every transfer corrupted) exhausts the bounded
/// retries; the TransferError carries the original injected fault so the
/// post-mortem sees the root cause, and the retry budget is honoured.
TEST(Resilience, RetryExhaustionSurfacesOriginalFault) {
  sim::FaultConfig fc;
  fc.seed = 5;
  fc.pcie_corrupt_prob = 1.0;
  ttmetal::DeviceConfig dc;
  dc.checksum_transfers = true;
  dc.transfer_max_retries = 2;
  dc.fault_plan = std::make_shared<sim::FaultPlan>(fc);
  auto dev = ttmetal::Device::open({}, dc);
  auto buf = dev->create_buffer({.size = 1024});
  std::vector<std::byte> data(1024, std::byte{0xAB});
  try {
    dev->write_buffer(*buf, data);
    FAIL() << "expected retry exhaustion";
  } catch (const ttmetal::TransferError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after 2 retries"), std::string::npos);
    EXPECT_NE(what.find("pcie-corrupt"), std::string::npos);
  }
  EXPECT_EQ(dev->transfer_retries(), 2u);

  // The same exhaustion propagates out of the resilient driver: persistent
  // bus corruption is not survivable by checkpointing.
  const auto p = small_problem(64, 32, 2);
  EXPECT_THROW(run_jacobi_resilient(p, {}, {},
                                    std::make_shared<sim::FaultPlan>(fc)),
               ttmetal::TransferError);
}

/// With recovery disabled (max_restarts = 0) the watchdog timeout from the
/// first lost generation surfaces unchanged.
TEST(Resilience, RestartBudgetExhaustionRethrowsTimeout) {
  const auto p = small_problem(64, 32, 4);
  DeviceRunConfig cfg;
  cfg.cores_y = 2;
  ResilienceOptions opts;
  opts.max_restarts = 0;

  sim::FaultConfig fc;
  fc.core_kills = {{.core = 0, .at = 1}};  // dead from the first charge
  EXPECT_THROW(run_jacobi_resilient(p, cfg, opts,
                                    std::make_shared<sim::FaultPlan>(fc)),
               ttmetal::DeviceTimeoutError);
}

TEST(Resilience, HealCoreRestoresFlappedCoreButKeepsFutureKills) {
  // A flapping card scripted deterministically: core 3 dies at 1ms, field
  // service heals it at 5ms, and a second kill is scheduled for 9ms. The
  // heal must clear only the elapsed kill.
  sim::FaultConfig fc;
  fc.core_kills.push_back({3, 1 * kMillisecond});
  fc.core_kills.push_back({3, 9 * kMillisecond});
  sim::FaultPlan plan(fc);

  EXPECT_FALSE(plan.core_dead(3, 0));
  EXPECT_TRUE(plan.core_dead(3, 2 * kMillisecond));
  plan.commit_elapsed_kills(2 * kMillisecond);  // observed, as a reopen would

  EXPECT_EQ(plan.heal_dead_cores(5 * kMillisecond), 1);
  EXPECT_FALSE(plan.core_dead(3, 5 * kMillisecond));
  // The 9ms kill survives the heal: the card flaps again.
  EXPECT_TRUE(plan.core_dead(3, 9 * kMillisecond));
  // Healing a live core is a no-op (no event logged, nothing changes).
  const std::size_t events = plan.trace().size();
  plan.heal_core(5 * kMillisecond, 3);
  EXPECT_EQ(plan.trace().size(), events);
  // The heal itself is part of the deterministic fault trace.
  EXPECT_NE(plan.trace_string().find("core-heal"), std::string::npos);
}

}  // namespace
}  // namespace ttsim::core
