/// \file test_paper_claims.cpp
/// Integration tests pinning the paper's qualitative claims at reduced
/// scale, so regressions in the model or kernels that would break the
/// reproduction fail CI rather than only showing up in bench output.

#include <gtest/gtest.h>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/xeon_model.hpp"
#include "ttsim/energy/energy.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace ttsim {
namespace {

/// Table I's ladder: initial <= write-optimised < double-buffered, all far
/// below the CPU core, at the paper's 512x512 shape.
TEST(PaperClaims, TableOneLadder) {
  core::JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = 6;
  auto gpts = [&](core::DeviceStrategy s) {
    core::DeviceRunConfig cfg;
    cfg.strategy = s;
    return core::run_jacobi_on_device(p, cfg).gpts(p, true);
  };
  const double initial = gpts(core::DeviceStrategy::kInitial);
  const double write_opt = gpts(core::DeviceStrategy::kWriteOptimised);
  const double db = gpts(core::DeviceStrategy::kDoubleBuffered);
  EXPECT_LE(initial, write_opt * 1.001);
  EXPECT_LT(write_opt, db);
  // ~100x slower than a CPU core (paper: 0.014 vs 1.41).
  cpu::XeonModel xeon;
  EXPECT_GT(xeon.gpts(1), db * 50);
  // Paper band: initial 0.0065, double-buffered 0.0140 GPt/s.
  EXPECT_GT(initial, 0.003);
  EXPECT_LT(initial, 0.03);
  EXPECT_GT(db, 0.007);
  EXPECT_LT(db, 0.03);
}

/// Table II's ordering: none > compute > write > read >> memcpy ~ r+m.
TEST(PaperClaims, TableTwoComponentOrdering) {
  core::JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = 4;
  auto gpts = [&](bool rd, bool mc, bool co, bool wr) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kDoubleBuffered;
    cfg.toggles = core::ComponentToggles{rd, mc, co, wr};
    return core::run_jacobi_on_device(p, cfg).gpts(p, true);
  };
  const double none = gpts(false, false, false, false);
  const double compute = gpts(false, false, true, false);
  const double write = gpts(false, false, false, true);
  const double read = gpts(true, false, false, false);
  const double memcpy_only = gpts(false, true, false, false);
  const double read_memcpy = gpts(true, true, false, false);
  EXPECT_GT(none, compute);
  EXPECT_GT(compute, write);
  EXPECT_GT(write, read);
  EXPECT_GT(read, memcpy_only * 5);  // memcpy is the standout bottleneck
  EXPECT_GE(memcpy_only, read_memcpy);
  // The compute ceiling is in the paper's band (1.387 GPt/s).
  EXPECT_GT(compute, 1.0);
  EXPECT_LT(compute, 1.8);
}

/// Section VI's claim: the optimised kernel approaches the compute ceiling
/// (paper: 1.06 of 1.387 GPt/s on 1024-wide chunks).
TEST(PaperClaims, OptimisedKernelNearComputeCeiling) {
  core::JacobiProblem p;
  p.width = 1024;
  p.height = 512;
  p.iterations = 6;
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  const double g = core::run_jacobi_on_device(p, cfg).gpts(p, true);
  EXPECT_GT(g, 0.75);
  EXPECT_LT(g, 1.387);
}

/// Section VII headline at reduced scale: many Tensix cores beat one and the
/// card's near-constant power makes them far more energy-efficient than the
/// modelled CPU.
TEST(PaperClaims, ScalingAndEnergyHeadline) {
  core::JacobiProblem p;
  p.width = 2304;
  p.height = 256;
  p.iterations = 5;
  auto run = [&](int cy, int cx) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = cy;
    cfg.cores_x = cx;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    return core::run_jacobi_on_device(p, cfg);
  };
  const auto one = run(1, 1);
  const auto many = run(8, 3);
  EXPECT_GT(many.gpts(p, true), one.gpts(p, true) * 6);

  // Energy: device joules for this problem vs the modelled Xeon on 24 cores.
  energy::CardEnergyModel card;
  cpu::XeonModel xeon;
  const double device_j = card.joules(many.kernel_time, 24);
  const double cpu_j = xeon.joules(p, 24);
  EXPECT_GT(cpu_j, device_j * 2.0);
}

/// Multi-card scaling is near-linear (paper: 2x and ~3.9x).
TEST(PaperClaims, MultiCardNearLinear) {
  core::JacobiProblem p;
  p.width = 1024;
  p.height = 256;
  p.iterations = 5;
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_y = 8;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
  const auto one = core::run_jacobi_multicard(p, 1, cfg);
  const auto two = core::run_jacobi_multicard(p, 2, cfg);
  const auto four = core::run_jacobi_multicard(p, 4, cfg);
  const double s2 = one.gpts(p, true) > 0 ? two.gpts(p, true) / one.gpts(p, true) : 0;
  const double s4 = one.gpts(p, true) > 0 ? four.gpts(p, true) / one.gpts(p, true) : 0;
  EXPECT_GT(s2, 1.6);
  EXPECT_LT(s2, 2.2);
  EXPECT_GT(s4, 3.0);
  EXPECT_LT(s4, 4.4);
}

/// Section V's lessons, pinned end to end on the streaming probe.
TEST(PaperClaims, StreamingLessons) {
  stream::StreamParams p;
  p.rows = 128;
  p.verify = false;
  const auto baseline = stream::run_streaming_benchmark(p);

  // Lesson 1: many small accesses are slow.
  auto small = p;
  small.read_batch = 64;
  EXPECT_GT(stream::run_streaming_benchmark(small).kernel_time,
            baseline.kernel_time * 5);

  // Lesson 3: memory copies between local buffers and CBs are expensive.
  auto copied = p;
  copied.via_local_buffer = true;
  EXPECT_GT(stream::run_streaming_benchmark(copied).kernel_time,
            baseline.kernel_time * 5);

  // Lesson 4: replication hurts, interleaving ameliorates it.
  auto repl = p;
  repl.replication = 16;
  const auto repl_single = stream::run_streaming_benchmark(repl);
  repl.interleave_page = 32 * KiB;
  const auto repl_inter = stream::run_streaming_benchmark(repl);
  EXPECT_GT(repl_single.kernel_time, baseline.kernel_time * 4);
  EXPECT_LT(repl_inter.kernel_time, repl_single.kernel_time);
}

}  // namespace
}  // namespace ttsim
