/// \file test_stencil_cpu.cpp
/// Unit tests for the general-stencil CPU references: boundary handling
/// (including the zero halo corners of the tap-order contract), BF16
/// tap-order rounding, multi-pass visibility, the Life post-op, and the
/// multi-field FDTD gallery workload.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/core/gallery.hpp"
#include "ttsim/core/stencil_spec.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

namespace ttsim {
namespace {

core::GeneralStencilProblem identity_problem(std::uint32_t w, std::uint32_t h) {
  core::GeneralStencilProblem g;
  g.width = w;
  g.height = h;
  g.iterations = 1;
  core::FieldSpec f;
  f.name = "u";
  g.fields.push_back(std::move(f));
  core::StencilPass pass;
  pass.target = 0;
  pass.terms.push_back(core::TapTerm{0, core::Tap::kC, 1.0f});
  g.passes.push_back(std::move(pass));
  return g;
}

TEST(StencilCpu, IdentityPreservesInterior) {
  auto g = identity_problem(32, 8);
  g.fields[0].initial_field.assign(32 * 8, 0.0f);
  for (std::size_t i = 0; i < g.fields[0].initial_field.size(); ++i) {
    g.fields[0].initial_field[i] = static_cast<float>(i % 7) * 0.25f;
  }
  const auto out = cpu::general_reference_f32(g);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), g.fields[0].initial_field.size());
  for (std::size_t i = 0; i < out[0].size(); ++i) {
    // One C-only tap with weight 1: a single BF16 multiply by 1.0 is exact.
    EXPECT_EQ(out[0][i],
              static_cast<float>(bfloat16_t(g.fields[0].initial_field[i])))
        << "elem " << i;
  }
}

/// A pure-West shift drags the left boundary constant into column 0; the
/// top row's West tap still reads the boundary value, not zero.
TEST(StencilCpu, BoundaryConstantsEnterFromEdges) {
  auto g = identity_problem(32, 6);
  g.passes[0].terms[0] = core::TapTerm{0, core::Tap::kW, 1.0f};
  g.fields[0].bc_left = 2.0f;
  g.fields[0].initial = 0.0f;
  const auto out = cpu::general_reference_f32(g);
  for (std::uint32_t r = 0; r < 6; ++r) {
    EXPECT_EQ(out[0][r * 32 + 0], 2.0f) << "row " << r;   // saw bc_left
    EXPECT_EQ(out[0][r * 32 + 1], 0.0f) << "row " << r;   // saw interior
  }
}

/// Diagonal taps never see a boundary corner value: the halo corners are
/// zero by the tap-order contract, so the NW tap of the top-left cell
/// contributes 0 even when both adjacent edges carry non-zero constants.
TEST(StencilCpu, HaloCornersAreZero) {
  auto g = identity_problem(32, 6);
  g.passes[0].terms[0] = core::TapTerm{0, core::Tap::kNW, 1.0f};
  g.fields[0].bc_left = 3.0f;
  g.fields[0].bc_top = 5.0f;
  g.fields[0].initial = 0.0f;
  const auto out = cpu::general_reference_f32(g);
  EXPECT_EQ(out[0][0], 0.0f) << "NW of (0,0) is the zero halo corner";
  EXPECT_EQ(out[0][1], 5.0f) << "NW of (0,1) is the top boundary";
  EXPECT_EQ(out[0][32], 3.0f) << "NW of (1,0) is the left boundary";
}

/// BF16 accumulation is order-sensitive: the reference must add terms in
/// listed order, rounding after every product and every sum. Reversing the
/// term order changes the bits for values chosen to straddle a rounding
/// boundary — this pins the tap-order contract.
TEST(StencilCpu, Bf16RoundingIsTapOrderSensitive) {
  auto make = [](bool reversed) {
    core::GeneralStencilProblem g;
    g.width = 16;
    g.height = 1;
    g.iterations = 1;
    core::FieldSpec f;
    f.name = "u";
    // BF16 ulp in [1,2) is 2^-7. On a uniform field of 1.0, forward order
    // accumulates (1.0 + 2^-8) -> tie, rounds to even 1.0, + 2^-8 -> 1.0
    // again; reversed order gets 2^-8 + 2^-8 = 2^-7 (exact), + 1.0 ->
    // 1 + 2^-7, exactly representable. Same taps, different bits.
    f.initial = 1.0f;
    g.fields.push_back(std::move(f));
    core::StencilPass pass;
    pass.target = 0;
    std::vector<core::TapTerm> terms = {
        core::TapTerm{0, core::Tap::kC, 1.0f},
        core::TapTerm{0, core::Tap::kW, 0.00390625f},
        core::TapTerm{0, core::Tap::kE, 0.00390625f},
    };
    if (reversed) std::reverse(terms.begin(), terms.end());
    pass.terms = terms;
    g.passes.push_back(std::move(pass));
    return g;
  };
  const auto fwd = cpu::general_reference_bf16(make(false));
  const auto rev = cpu::general_reference_bf16(make(true));
  bool any_diff = false;
  for (std::size_t i = 0; i < fwd[0].size(); ++i) {
    if (fwd[0][i].bits() != rev[0][i].bits()) any_diff = true;
  }
  EXPECT_TRUE(any_diff)
      << "term order should be observable in BF16 accumulation";
}

/// The BF16 reference is the exact widening of itself: f32-of-bf16 output
/// must round-trip (a self-consistency guard for the widening used by the
/// device readback comparisons).
TEST(StencilCpu, Bf16ReferenceRoundTrips) {
  const auto g = core::gallery::convection(32, 8, 3);
  const auto bf = cpu::general_reference_bf16(g);
  for (const auto& field : bf) {
    for (const auto v : field) {
      const bfloat16_t again(static_cast<float>(v));
      EXPECT_EQ(again.bits(), v.bits());
    }
  }
}

/// Pass order is immediate-visibility: a second pass reading the first
/// pass's target sees this iteration's update.
TEST(StencilCpu, MultiPassSeesEarlierPassUpdates) {
  core::GeneralStencilProblem g;
  g.width = 16;
  g.height = 2;
  g.iterations = 1;
  core::FieldSpec a;
  a.name = "a";
  a.initial = 1.0f;
  g.fields.push_back(std::move(a));
  core::FieldSpec b;
  b.name = "b";
  b.initial = 0.0f;
  g.fields.push_back(std::move(b));
  core::StencilPass pa;  // a' = 2a
  pa.target = 0;
  pa.terms.push_back(core::TapTerm{0, core::Tap::kC, 2.0f});
  g.passes.push_back(std::move(pa));
  core::StencilPass pb;  // b' = a (must see a' = 2, not a = 1)
  pb.target = 1;
  pb.terms.push_back(core::TapTerm{0, core::Tap::kC, 1.0f});
  g.passes.push_back(std::move(pb));
  const auto out = cpu::general_reference_f32(g);
  EXPECT_EQ(out[0][0], 2.0f);
  EXPECT_EQ(out[1][0], 2.0f) << "pass 2 must read pass 1's update";
}

/// A Life glider translates one cell down-right every 4 generations —
/// end-to-end check of the 8-tap sum plus the (S==3) + (S==2)*self post-op.
TEST(StencilCpu, LifeGliderMoves) {
  core::GeneralStencilProblem g = core::gallery::life(32, 16, 4, /*seed=*/1);
  auto& init = g.fields[0].initial_field;
  init.assign(32 * 16, 0.0f);
  auto set = [&](int r, int c) { init[static_cast<std::size_t>(r) * 32 + c] = 1.0f; };
  // Glider: .X. / ..X / XXX  with top-left at (2,2).
  set(2, 3);
  set(3, 4);
  set(4, 2);
  set(4, 3);
  set(4, 4);
  const auto out = cpu::general_reference_f32(g);
  auto alive = [&](int r, int c) {
    return out[0][static_cast<std::size_t>(r) * 32 + c] != 0.0f;
  };
  // After 4 generations the same glider sits one cell down-right.
  EXPECT_TRUE(alive(3, 4));
  EXPECT_TRUE(alive(4, 5));
  EXPECT_TRUE(alive(5, 3));
  EXPECT_TRUE(alive(5, 4));
  EXPECT_TRUE(alive(5, 5));
  int live = 0;
  for (const auto v : out[0]) live += v != 0.0f;
  EXPECT_EQ(live, 5) << "glider population is conserved";
}

/// Multi-field FDTD: energy stays finite over many steps, the H fields are
/// antisymmetric around the centred pulse, and the BF16 reference tracks
/// the f32 one to BF16 precision.
TEST(StencilCpu, FdtdMultiFieldConsistency) {
  const std::uint32_t w = 48, h = 24;
  const auto g = core::gallery::fdtd2d(w, h, 10);
  ASSERT_EQ(g.fields.size(), 3u);
  const auto f32 = cpu::general_reference_f32(g);
  const auto bf = cpu::general_reference_bf16(g);
  ASSERT_EQ(f32.size(), 3u);
  ASSERT_EQ(bf.size(), 3u);
  double energy = 0.0;
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t i = 0; i < f32[f].size(); ++i) {
      ASSERT_TRUE(std::isfinite(f32[f][i])) << "field " << f << " elem " << i;
      energy += static_cast<double>(f32[f][i]) * f32[f][i];
      // BF16 has ~3 decimal digits; the replay should stay within a few
      // ulps of the f32 trajectory over 10 steps.
      EXPECT_NEAR(static_cast<float>(bf[f][i]), f32[f][i],
                  0.1f * (1.0f + std::abs(f32[f][i])))
          << "field " << f << " elem " << i;
    }
  }
  EXPECT_GT(energy, 0.0) << "the pulse did not vanish";
}

/// The legacy 5-point lift agrees with the dedicated 5-point reference —
/// the bridge both device paths rely on.
TEST(StencilCpu, ToGeneralMatchesLegacyReference) {
  core::StencilProblem p;
  p.width = 32;
  p.height = 12;
  p.iterations = 4;
  p.stencil = {0.5f, 0.125f, 0.125f, 0.125f, 0.125f};
  p.bc_left = 1.0f;
  const auto legacy = cpu::stencil_reference_bf16(p);
  const auto general = cpu::general_reference_bf16(core::to_general(p));
  ASSERT_EQ(general.size(), 1u);
  ASSERT_EQ(general[0].size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(general[0][i].bits(), legacy[i].bits()) << "elem " << i;
  }
}

}  // namespace
}  // namespace ttsim
