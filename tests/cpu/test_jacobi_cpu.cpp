#include "ttsim/cpu/jacobi_cpu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ttsim/cpu/xeon_model.hpp"

namespace ttsim::cpu {
namespace {

core::JacobiProblem small_problem(int iters = 50) {
  core::JacobiProblem p;
  p.width = 32;
  p.height = 32;
  p.iterations = iters;
  p.bc_left = 1.0f;
  p.bc_right = 0.0f;
  p.bc_top = 0.5f;
  p.bc_bottom = 0.5f;
  return p;
}

TEST(JacobiCpu, SingleIterationIsNeighbourAverage) {
  auto p = small_problem(1);
  const auto out = jacobi_reference_f32(p);
  // Interior point far from boundaries: all four neighbours were 0.
  EXPECT_EQ(out[15 * 32 + 15], 0.0f);
  // Top-left corner: ym = bc_top, xm = bc_left, others initial(0).
  EXPECT_EQ(out[0], 0.25f * (1.0f + 0.5f));
  // Point adjacent only to the left boundary.
  EXPECT_EQ(out[15 * 32 + 0], 0.25f * 1.0f);
}

TEST(JacobiCpu, ValuesDiffuseInward) {
  auto p = small_problem(200);
  const auto out = jacobi_reference_f32(p);
  // After many iterations the interior has picked up boundary heat.
  EXPECT_GT(out[16 * 32 + 16], 0.1f);
  // The column next to the hot left boundary is warmer than next to the
  // cold right boundary.
  EXPECT_GT(out[16 * 32 + 0], out[16 * 32 + 31]);
}

TEST(JacobiCpu, ConvergesTowardsHarmonicSolution) {
  // With all boundaries equal, the converged solution is that constant.
  core::JacobiProblem p;
  p.width = 16;
  p.height = 16;
  p.iterations = 3000;
  p.bc_left = p.bc_right = p.bc_top = p.bc_bottom = 1.0f;
  p.initial = 0.0f;
  const auto out = jacobi_reference_f32(p);
  for (float v : out) EXPECT_NEAR(v, 1.0f, 1e-3f);
}

TEST(JacobiCpu, SymmetricProblemGivesSymmetricSolution) {
  core::JacobiProblem p = small_problem(100);
  p.bc_top = p.bc_bottom = 0.25f;  // symmetric about the horizontal midline
  const auto out = jacobi_reference_f32(p);
  for (std::uint32_t r = 0; r < 16; ++r) {
    for (std::uint32_t c = 0; c < 32; ++c) {
      EXPECT_FLOAT_EQ(out[r * 32 + c], out[(31 - r) * 32 + c]) << r << "," << c;
    }
  }
}

TEST(JacobiCpu, MaxPrincipleHolds) {
  // Harmonic iterates stay within the boundary value range.
  auto p = small_problem(500);
  const auto out = jacobi_reference_f32(p);
  for (float v : out) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(JacobiCpu, MultithreadedMatchesScalar) {
  auto p = small_problem(100);
  const auto a = jacobi_reference_f32(p, 1);
  const auto b = jacobi_reference_f32(p, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(JacobiCpu, Bf16TracksF32WithinRounding) {
  auto p = small_problem(100);
  const auto f = jacobi_reference_f32(p);
  const auto b = jacobi_reference_bf16(p);
  double max_diff = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(f[i]) -
                                 static_cast<double>(static_cast<float>(b[i]))));
  }
  // BF16 has ~2-3 decimal digits; accumulated drift stays small on [0,1].
  EXPECT_LT(max_diff, 0.02);
  EXPECT_GT(max_diff, 0.0);  // BF16 genuinely rounds
}

TEST(JacobiCpu, Bf16IsDeterministic) {
  auto p = small_problem(25);
  const auto a = jacobi_reference_bf16(p);
  const auto b = jacobi_reference_bf16(p);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits(), b[i].bits());
}

TEST(JacobiCpu, CardSplitReferenceFreezesCutHalos) {
  auto p = small_problem(100);
  const auto whole = jacobi_reference_bf16_cards(p, 1);
  const auto split = jacobi_reference_bf16_cards(p, 2);
  // The split solution differs near the cut (paper: "will not provide the
  // correct answer") but matches away from it less and less... verify they
  // differ somewhere and the cut rows see frozen halos.
  bool differs = false;
  for (std::size_t i = 0; i < whole.size(); ++i) {
    if (whole[i].bits() != split[i].bits()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(JacobiCpu, HostMeasurementProducesRate) {
  auto p = small_problem(20);
  const auto m = measure_host_jacobi(p, 1);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.gpts, 0.0);
}

TEST(XeonModel, CalibratedToPaperRows) {
  XeonModel xeon;
  EXPECT_NEAR(xeon.gpts(1), 1.41, 1e-9);
  EXPECT_NEAR(xeon.gpts(24), 21.61, 0.15);
  core::JacobiProblem p;
  p.width = 1024;
  p.height = 9216;
  p.iterations = 5000;
  // Paper Table VIII: 1657 J on one core, 588 J on 24.
  EXPECT_NEAR(xeon.joules(p, 1), 1657.0, 30.0);
  EXPECT_NEAR(xeon.joules(p, 24), 588.0, 15.0);
}

TEST(XeonModel, MoreCoresFasterButLessEfficient) {
  XeonModel xeon;
  double prev = 0;
  for (int c : {1, 2, 4, 8, 16, 24}) {
    EXPECT_GT(xeon.gpts(c), prev);
    prev = xeon.gpts(c);
  }
  EXPECT_LT(xeon.gpts(24), 24 * xeon.gpts(1));
}

}  // namespace
}  // namespace ttsim::cpu
