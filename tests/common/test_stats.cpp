#include "ttsim/common/stats.hpp"

#include <gtest/gtest.h>

namespace ttsim {
namespace {

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, SingleValue) {
  Stats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, KnownSequence) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, WelfordMatchesNaiveOnShiftedData) {
  // Large offset stresses numerical stability.
  Stats s;
  const double base = 1e9;
  for (int i = 0; i < 100; ++i) s.add(base + i);
  EXPECT_NEAR(s.mean(), base + 49.5, 1e-3);
  EXPECT_NEAR(s.variance(), 841.666, 0.01);
}

}  // namespace
}  // namespace ttsim
