#include "ttsim/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ttsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{3};
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng r{13};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace ttsim
