#include "ttsim/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ttsim/common/compare.hpp"

namespace ttsim {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t{"Version", "GPt/s"};
  t.add_row("Initial", 0.0065);
  t.add_row("Double buffering", 0.014);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Version"), std::string::npos);
  EXPECT_NE(s.find("Initial"), std::string::npos);
  EXPECT_NE(s.find("0.0065"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FmtTrimsTrailingZeros) {
  EXPECT_EQ(Table::fmt(1.5), "1.5");
  EXPECT_EQ(Table::fmt(2.0), "2.0");
  EXPECT_EQ(Table::fmt(0.014), "0.014");
}

TEST(Table, FmtUsesScientificForExtremes) {
  const std::string tiny = Table::fmt(1.2e-7);
  EXPECT_NE(tiny.find('e'), std::string::npos);
}

TEST(Table, MixedColumnWidthsAligned) {
  Table t{"A", "B"};
  t.add_row("x", 1);
  t.add_row("longer-label", 100);
  std::istringstream in(t.to_string());
  std::string first, second;
  std::getline(in, first);
  std::getline(in, second);  // rule
  std::string r1, r2;
  std::getline(in, r1);
  std::getline(in, r2);
  EXPECT_EQ(r1.size(), r2.size());
}

TEST(ComparisonReport, PerfectAgreement) {
  ComparisonReport rep("Table I", "test");
  rep.add("a", 1.0, 1.0, "GPt/s");
  rep.add("b", 2.0, 2.0, "GPt/s");
  EXPECT_DOUBLE_EQ(rep.ordering_agreement(), 1.0);
  EXPECT_DOUBLE_EQ(rep.geomean_ratio(), 1.0);
}

TEST(ComparisonReport, OrderingAgreementDetectsFlip) {
  ComparisonReport rep("X", "test");
  rep.add("a", 1.0, 5.0, "s");
  rep.add("b", 2.0, 4.0, "s");
  rep.add("c", 3.0, 3.0, "s");
  // paper says a<b<c; measured says a>b>c: all 3 pairs disagree.
  EXPECT_DOUBLE_EQ(rep.ordering_agreement(), 0.0);
}

TEST(ComparisonReport, ScaledValuesKeepOrderingButShiftGeomean) {
  ComparisonReport rep("X", "test");
  rep.add("a", 1.0, 2.0, "s");
  rep.add("b", 2.0, 4.0, "s");
  EXPECT_DOUBLE_EQ(rep.ordering_agreement(), 1.0);
  EXPECT_NEAR(rep.geomean_ratio(), 2.0, 1e-12);
}

TEST(ComparisonReport, NearTiesCountAsAgreement) {
  ComparisonReport rep("X", "test");
  rep.add("a", 1.00, 1.2, "s");
  rep.add("b", 1.01, 0.9, "s");  // paper values within 3% => tie
  EXPECT_DOUBLE_EQ(rep.ordering_agreement(), 1.0);
}

TEST(ComparisonReport, ToStringContainsShapeSummary) {
  ComparisonReport rep("Table V", "replication");
  rep.add("x1", 0.011, 0.012, "s");
  const std::string s = rep.to_string();
  EXPECT_NE(s.find("Table V"), std::string::npos);
  EXPECT_NE(s.find("ordering agreement"), std::string::npos);
}

}  // namespace
}  // namespace ttsim
