#include "ttsim/common/units.hpp"

#include <gtest/gtest.h>

namespace ttsim {
namespace {

TEST(Units, ClockPeriodAt1p2GHz) {
  Clock clk{1.2};
  EXPECT_EQ(clk.period_ps(), 833);  // 1/1.2 GHz = 833.3 ps, rounded
  EXPECT_NEAR(clk.ghz(), 1.2, 0.01);
}

TEST(Units, CycleTimeConversionRoundTrip) {
  Clock clk{1.2};
  EXPECT_EQ(clk.to_time(1000), 833000);
  EXPECT_EQ(clk.to_cycles(clk.to_time(1000)), 1000);
}

TEST(Units, ToCyclesRoundsUp) {
  Clock clk{1.0};  // 1000 ps period
  EXPECT_EQ(clk.to_cycles(1), 1);
  EXPECT_EQ(clk.to_cycles(1000), 1);
  EXPECT_EQ(clk.to_cycles(1001), 2);
}

TEST(Units, TransferTimeMatchesBandwidth) {
  // 1 GB/s == 1 byte per ns.
  EXPECT_EQ(transfer_time(1000, 1.0), 1000 * kNanosecond);
  // 64 MiB at 12 GB/s ≈ 5.59 ms.
  const SimTime t = transfer_time(64 * MiB, 12.0);
  EXPECT_NEAR(to_seconds(t), 0.00559, 0.0001);
}

TEST(Units, TransferTimeRejectsNonPositiveBandwidth) {
  EXPECT_THROW(transfer_time(10, 0.0), CheckError);
  EXPECT_THROW(transfer_time(10, -3.0), CheckError);
}

TEST(Units, AlignHelpers) {
  EXPECT_EQ(align_up(0, 32), 0u);
  EXPECT_EQ(align_up(1, 32), 32u);
  EXPECT_EQ(align_up(32, 32), 32u);
  EXPECT_EQ(align_up(33, 32), 64u);
  EXPECT_EQ(align_down(31, 32), 0u);
  EXPECT_EQ(align_down(33, 32), 32u);
}

TEST(Units, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Units, ToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_DOUBLE_EQ(to_seconds(kMicrosecond), 1e-6);
  EXPECT_DOUBLE_EQ(to_seconds(kNanosecond), 1e-9);
}

}  // namespace
}  // namespace ttsim
