#include "ttsim/energy/energy.hpp"

#include <gtest/gtest.h>

namespace ttsim::energy {
namespace {

TEST(CardEnergyModel, NearConstantPowerDraw) {
  // Section VII: "the power draw of the e150 is roughly constant, between
  // 50 and 55 Watts, regardless of the number of Tensix cores in use."
  CardEnergyModel m;
  EXPECT_NEAR(m.power_w(1), m.power_w(108), 6.0);
  EXPECT_GT(m.power_w(1), 44.0);
  EXPECT_LT(m.power_w(108), 56.0);
}

TEST(CardEnergyModel, EnergyIsPowerTimesTime) {
  CardEnergyModel m;
  const double j = m.joules(2 * kSecond, 108);
  EXPECT_NEAR(j, 2.0 * m.power_w(108), 1e-9);
}

TEST(CardEnergyModel, MultiCardMultipliesPower) {
  CardEnergyModel m;
  EXPECT_NEAR(m.joules_multicard(1 * kSecond, 108, 4), 4.0 * m.power_w(108), 1e-9);
}

TEST(CardEnergyModel, PaperTableVIIIAnchors) {
  // e150, 108 cores, 22.06 GPt/s on 47.2e9 updates -> 2.14 s, paper 110 J.
  CardEnergyModel m;
  const double t108 = 47.2e9 / 22.06e9;
  EXPECT_NEAR(m.joules(static_cast<SimTime>(t108 * kSecond), 108), 110.0, 8.0);
  // 1 core, 1.06 GPt/s -> 44.5 s, paper 2094 J.
  const double t1 = 47.2e9 / 1.06e9;
  EXPECT_NEAR(m.joules(static_cast<SimTime>(t1 * kSecond), 1), 2094.0, 60.0);
}

TEST(CardEnergyModel, SpecConstructorUsesSpecValues) {
  sim::GrayskullSpec spec;
  spec.card_power_base_w = 100.0;
  spec.card_power_per_core_w = 1.0;
  CardEnergyModel m(spec);
  EXPECT_DOUBLE_EQ(m.power_w(8), 108.0);
}

TEST(CardEnergyModel, EnergyEfficiencyHeadline) {
  // The headline: at comparable time-to-solution the card's ~51 W beats the
  // modelled 270 W 24-core CPU by ~5x.
  CardEnergyModel card;
  const double cpu_power = 39.9 + 9.6 * 24;
  EXPECT_GT(cpu_power / card.power_w(108), 4.5);
}

}  // namespace
}  // namespace ttsim::energy
