#include "ttsim/bfloat/bfloat16.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ttsim/bfloat/convert.hpp"
#include "ttsim/common/rng.hpp"

namespace ttsim {
namespace {

TEST(Bfloat16, ZeroAndSign) {
  EXPECT_EQ(bfloat16_t{0.0f}.bits(), 0x0000);
  EXPECT_EQ(bfloat16_t{-0.0f}.bits(), 0x8000);
  EXPECT_EQ(bfloat16_t{0.0f}, bfloat16_t{-0.0f});
}

TEST(Bfloat16, ExactSmallIntegers) {
  // Integers up to 256 are exactly representable (8-bit mantissa).
  for (int i = -256; i <= 256; ++i) {
    EXPECT_EQ(static_cast<float>(bfloat16_t{static_cast<float>(i)}),
              static_cast<float>(i))
        << "i=" << i;
  }
}

TEST(Bfloat16, KnownBitPatterns) {
  EXPECT_EQ(bfloat16_t{1.0f}.bits(), 0x3F80);
  EXPECT_EQ(bfloat16_t{-1.0f}.bits(), 0xBF80);
  EXPECT_EQ(bfloat16_t{2.0f}.bits(), 0x4000);
  EXPECT_EQ(bfloat16_t{0.25f}.bits(), 0x3E80);  // the paper's scalar constant
  EXPECT_EQ(bfloat16_t{0.5f}.bits(), 0x3F00);
}

TEST(Bfloat16, RoundToNearestEven) {
  // BF16 stores 7 mantissa bits, so at exponent 0 the ULP is 2^-7 and the
  // halfway offset is 2^-8. 1.0 + 2^-8 ties between 1.0 (even mantissa) and
  // 1.0 + 2^-7 (odd): ties-to-even keeps 1.0.
  const float halfway_even = 1.0f + 0.00390625f;
  EXPECT_EQ(bfloat16_t{halfway_even}.bits(), 0x3F80);
  // (1 + 2^-7) + 2^-8 ties with the odd mantissa below: rounds up to even.
  const float halfway_odd = 1.0078125f + 0.00390625f;
  EXPECT_EQ(bfloat16_t{halfway_odd}.bits(), 0x3F82);
}

TEST(Bfloat16, RoundingErrorBounded) {
  Rng rng{99};
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.next_double(-1000.0, 1000.0));
    const float back = static_cast<float>(bfloat16_t{x});
    // Relative error at most 2^-8 (half ULP of a 7-stored-bit mantissa).
    EXPECT_LE(std::fabs(back - x), std::fabs(x) * 0.00390625f + 1e-30f);
  }
}

TEST(Bfloat16, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(bfloat16_t{inf}.is_inf());
  EXPECT_TRUE(bfloat16_t{-inf}.is_inf());
  EXPECT_TRUE(bfloat16_t{std::nanf("")}.is_nan());
  EXPECT_FALSE(bfloat16_t{1.0f}.is_nan());
  // NaN != NaN
  const bfloat16_t n{std::nanf("")};
  EXPECT_FALSE(n == n);
}

TEST(Bfloat16, OverflowToInfinity) {
  // Values beyond bf16 max (~3.39e38) round to infinity.
  EXPECT_TRUE(bfloat16_t{3.5e38f}.is_inf());
}

TEST(Bfloat16, ArithmeticRoundsResult) {
  // 256 + 1 = 257 needs 9 mantissa bits -> rounds to 256 (even).
  const bfloat16_t a{256.0f}, b{1.0f};
  EXPECT_EQ(static_cast<float>(a + b), 256.0f);
  // 256 + 2 = 258 -> representable? 258 = 0b100000010: needs 9 bits -> rounds
  // to nearest even multiple of 2: 258 itself (mantissa 1.0078125*2^8, exact
  // with 8 fractional mantissa bits at exponent 8: step is 2).
  EXPECT_EQ(static_cast<float>(a + bfloat16_t{2.0f}), 258.0f);
}

TEST(Bfloat16, JacobiAverageStaysExactOnQuarters) {
  // The Jacobi update multiplies sums by 0.25 — a power of two, always exact.
  const bfloat16_t sum = bfloat16_t{1.0f} + bfloat16_t{2.0f} + bfloat16_t{3.0f} +
                         bfloat16_t{2.0f};
  const bfloat16_t avg = sum * bfloat16_t{0.25f};
  EXPECT_EQ(static_cast<float>(avg), 2.0f);
}

TEST(Bfloat16, ComparisonOperators) {
  EXPECT_LT(bfloat16_t{1.0f}, bfloat16_t{2.0f});
  EXPECT_GT(bfloat16_t{2.0f}, bfloat16_t{-2.0f});
  EXPECT_LE(bfloat16_t{1.0f}, bfloat16_t{1.0f});
}

TEST(Bfloat16, NegationFlipsSignBit) {
  const bfloat16_t x{1.5f};
  EXPECT_EQ((-x).bits(), x.bits() ^ 0x8000);
  EXPECT_EQ(static_cast<float>(-x), -1.5f);
}

TEST(Bfloat16, NumericLimits) {
  using lim = std::numeric_limits<bfloat16_t>;
  EXPECT_FLOAT_EQ(static_cast<float>(lim::max()), 3.3895314e38f);
  EXPECT_FLOAT_EQ(static_cast<float>(lim::epsilon()), 0.0078125f);
  EXPECT_TRUE(lim::infinity().is_inf());
  EXPECT_TRUE(lim::quiet_NaN().is_nan());
  EXPECT_EQ(static_cast<float>(lim::lowest()), -static_cast<float>(lim::max()));
}

TEST(BfloatConvert, RoundTripArrays) {
  std::vector<float> src = {0.0f, 1.0f, -2.5f, 100.0f, 0.125f};
  const auto bf = to_bf16(src);
  const auto back = to_f32(bf);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(back[i], src[i]);
}

TEST(BfloatConvert, MaxAbsDiffDetectsRounding) {
  std::vector<float> src = {1.001f};  // not representable exactly
  const auto bf = to_bf16(src);
  EXPECT_GT(max_abs_diff(src, bf), 0.0f);
  EXPECT_LT(max_abs_diff(src, bf), 0.005f);
}

TEST(BfloatConvert, SizeMismatchThrows) {
  std::vector<float> src(4);
  std::vector<bfloat16_t> dst(3);
  EXPECT_THROW(to_bf16(std::span<const float>(src), std::span<bfloat16_t>(dst)),
               CheckError);
}

}  // namespace
}  // namespace ttsim
