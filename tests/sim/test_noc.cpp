#include "ttsim/sim/noc.hpp"

#include <gtest/gtest.h>

namespace ttsim::sim {
namespace {

class NocTest : public ::testing::Test {
 protected:
  GrayskullSpec spec_;
  Noc noc_{spec_, 0};
};

TEST_F(NocTest, SelfDistanceIsZero) {
  EXPECT_EQ(noc_.hops({3, 4}, {3, 4}), 0);
}

TEST_F(NocTest, ManhattanOnShortPaths) {
  EXPECT_EQ(noc_.hops({1, 1}, {4, 3}), 5);
  EXPECT_EQ(noc_.hops({0, 0}, {1, 0}), 1);
}

TEST_F(NocTest, TorusWrapsAround) {
  // Torus X extent is grid_cols + 2 = 14: going 13 right equals 1 left.
  EXPECT_EQ(noc_.hops({0, 0}, {13, 0}), 1);
  // Y extent 10: distance 9 wraps to 1.
  EXPECT_EQ(noc_.hops({0, 0}, {0, 9}), 1);
  EXPECT_EQ(noc_.hops({0, 0}, {0, 5}), 5);
}

TEST_F(NocTest, Symmetric) {
  const NocCoord a{2, 7}, b{11, 1};
  EXPECT_EQ(noc_.hops(a, b), noc_.hops(b, a));
}

TEST_F(NocTest, HopLatencyScalesWithDistance) {
  EXPECT_EQ(noc_.hop_latency({0, 0}, {0, 0}), 0);
  EXPECT_EQ(noc_.hop_latency({0, 0}, {3, 0}), 3 * spec_.noc_hop_latency);
}

TEST_F(NocTest, OccupySerialisesBandwidth) {
  const SimTime end1 = noc_.occupy(0, 96'000);  // 1 us at 96 GB/s
  const SimTime end2 = noc_.occupy(0, 96'000);  // queued behind the first
  EXPECT_EQ(end1, 1 * kMicrosecond);
  EXPECT_EQ(end2, 2 * kMicrosecond);
}

TEST(NocIds, TwoIndependentNocs) {
  GrayskullSpec spec;
  Noc read_noc(spec, 0), write_noc(spec, 1);
  EXPECT_EQ(read_noc.id(), 0);
  EXPECT_EQ(write_noc.id(), 1);
  // Occupancy on one does not affect the other.
  read_noc.occupy(0, 1'000'000);
  EXPECT_EQ(write_noc.occupy(0, 96'000), 1 * kMicrosecond);
}

}  // namespace
}  // namespace ttsim::sim
