#include "ttsim/sim/interleave.hpp"

#include <gtest/gtest.h>

namespace ttsim::sim {
namespace {

TEST(InterleaveMap, BankCyclesRoundRobin) {
  InterleaveMap m(8, 1024);
  for (int p = 0; p < 32; ++p) {
    EXPECT_EQ(m.bank_of(static_cast<std::uint64_t>(p) * 1024), p % 8);
  }
}

TEST(InterleaveMap, SplitWithinOnePage) {
  InterleaveMap m(8, 4096);
  std::vector<InterleaveMap::Segment> segs;
  m.split(100, 200, segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].bank, 0);
  EXPECT_EQ(segs[0].offset, 100u);
  EXPECT_EQ(segs[0].length, 200u);
}

TEST(InterleaveMap, SplitAcrossPages) {
  InterleaveMap m(8, 1024);
  std::vector<InterleaveMap::Segment> segs;
  m.split(512, 2048, segs);  // spans pages 0,1,2
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].bank, 0);
  EXPECT_EQ(segs[0].length, 512u);
  EXPECT_EQ(segs[1].bank, 1);
  EXPECT_EQ(segs[1].length, 1024u);
  EXPECT_EQ(segs[2].bank, 2);
  EXPECT_EQ(segs[2].length, 512u);
}

TEST(InterleaveMap, SplitLengthsSumToTotal) {
  InterleaveMap m(8, 2048);
  std::vector<InterleaveMap::Segment> segs;
  m.split(777, 16384, segs);
  std::uint64_t total = 0;
  for (const auto& s : segs) total += s.length;
  EXPECT_EQ(total, 16384u);
  // Consecutive segments advance contiguously.
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].offset, segs[i - 1].offset + segs[i - 1].length);
  }
}

TEST(InterleaveMap, SegmentCount) {
  InterleaveMap m(8, 1024);
  EXPECT_EQ(m.segment_count(0, 0), 0u);
  EXPECT_EQ(m.segment_count(0, 1024), 1u);
  EXPECT_EQ(m.segment_count(0, 1025), 2u);
  EXPECT_EQ(m.segment_count(1023, 2), 2u);
  EXPECT_EQ(m.segment_count(0, 16384), 16u);
}

TEST(InterleaveMap, AcceptsCoarseStripeSizes) {
  // tt-metal interleaving is validated at the DramModel level (pow2,
  // <= 64 KiB); the map itself also serves coarse striping with arbitrary
  // slab sizes.
  InterleaveMap m(8, 1000);
  EXPECT_EQ(m.bank_of(999), 0);
  EXPECT_EQ(m.bank_of(1000), 1);
  EXPECT_THROW(InterleaveMap(8, 0), CheckError);
}

TEST(InterleaveMap, WrapsBanks) {
  InterleaveMap m(8, 1024);
  std::vector<InterleaveMap::Segment> segs;
  m.split(7 * 1024, 2048, segs);  // pages 7 and 8 -> banks 7 and 0
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].bank, 7);
  EXPECT_EQ(segs[1].bank, 0);
}

}  // namespace
}  // namespace ttsim::sim
