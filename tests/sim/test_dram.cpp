#include "ttsim/sim/dram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "ttsim/sim/fault.hpp"
#include "ttsim/sim/sync.hpp"

namespace ttsim::sim {
namespace {

/// Test fixture with one engine, one DRAM model and a registered region.
class DramTest : public ::testing::Test {
 protected:
  DramTest() : dram_(engine_, spec_) {}

  /// Register a single-bank region of `size` bytes at address `base`.
  std::vector<std::byte>& make_region(std::uint64_t base, std::uint64_t size,
                                      int bank = 0, std::uint64_t page_size = 0) {
    storages_.push_back(std::make_unique<std::vector<std::byte>>(size));
    auto& storage = *storages_.back();
    dram_.add_region(DramRegion{base, size, page_size == 0 ? bank : -1, page_size,
                                false, storage.data()});
    return storage;
  }

  /// Run a single-process read and return (elapsed, data-correct?).
  SimTime timed_read(std::uint64_t addr, std::uint32_t size, std::byte* dst) {
    SimTime elapsed = -1;
    engine_.spawn("reader", [&] {
      CompletionTracker t(engine_);
      const SimTime start = engine_.now();
      t.issue();
      dram_.read(addr, dst, size, dma_, 4, [&t] { t.complete(); });
      t.barrier();
      elapsed = engine_.now() - start;
    });
    engine_.run();
    return elapsed;
  }

  SimTime timed_write(std::uint64_t addr, std::uint32_t size, const std::byte* src) {
    SimTime elapsed = -1;
    engine_.spawn("writer", [&] {
      CompletionTracker t(engine_);
      const SimTime start = engine_.now();
      t.issue();
      dram_.write(addr, src, size, dma_, 4, [&t] { t.complete(); });
      t.barrier();
      elapsed = engine_.now() - start;
    });
    engine_.run();
    return elapsed;
  }

  GrayskullSpec spec_;
  Engine engine_;
  DramModel dram_;
  ResourceTimeline dma_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> storages_;
};

TEST_F(DramTest, HostRoundTrip) {
  make_region(0, 4096);
  std::vector<std::byte> out(256), in(256);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::byte>(i);
  dram_.host_write(128, in.data(), in.size());
  dram_.host_read(128, out.data(), out.size());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST_F(DramTest, UnmappedAccessThrows) {
  make_region(0, 4096);
  std::byte b;
  EXPECT_THROW(dram_.host_read(5000, &b, 1), ApiError);
  EXPECT_THROW(dram_.host_read(4095, &b, 2), ApiError);  // runs past the end
}

TEST_F(DramTest, OverlappingRegionsRejected) {
  make_region(0, 4096);
  std::vector<std::byte> s(4096);
  EXPECT_THROW(
      dram_.add_region(DramRegion{2048, 4096, 0, 0, false, s.data()}), CheckError);
  EXPECT_THROW(dram_.add_region(DramRegion{0, 1, 0, 0, false, s.data()}), CheckError);
  // Adjacent is fine.
  dram_.add_region(DramRegion{4096, 4096, 1, 0, false, s.data()});
}

TEST_F(DramTest, RemoveRegionFreesAddressSpace) {
  make_region(0, 4096);
  dram_.remove_region(0);
  std::byte b;
  EXPECT_THROW(dram_.host_read(0, &b, 1), ApiError);
  EXPECT_THROW(dram_.remove_region(0), CheckError);
}

TEST_F(DramTest, DeviceReadDeliversData) {
  auto& storage = make_region(0, 4096);
  std::iota(reinterpret_cast<unsigned char*>(storage.data()),
            reinterpret_cast<unsigned char*>(storage.data()) + 4096, 0);
  std::vector<std::byte> dst(64);
  const SimTime t = timed_read(64, 64, dst.data());
  EXPECT_GT(t, 0);
  EXPECT_EQ(std::memcmp(dst.data(), storage.data() + 64, 64), 0);
}

TEST_F(DramTest, DeviceWriteCommitsAtCompletion) {
  auto& storage = make_region(0, 4096);
  std::vector<std::byte> src(64, std::byte{0xAB});
  const SimTime t = timed_write(0, 64, src.data());
  EXPECT_GT(t, 0);
  EXPECT_EQ(storage[0], std::byte{0xAB});
  EXPECT_EQ(storage[63], std::byte{0xAB});
  EXPECT_EQ(dram_.stats().write_requests, 1u);
  EXPECT_EQ(dram_.stats().bytes_written, 64u);
}

TEST_F(DramTest, WriteSnapshotsSourceAtIssue) {
  auto& storage = make_region(0, 4096);
  std::vector<std::byte> src(64, std::byte{0x11});
  engine_.spawn("writer", [&] {
    CompletionTracker t(engine_);
    t.issue();
    dram_.write(0, src.data(), 64, dma_, 4, [&t] { t.complete(); });
    // Clobber the source immediately: the committed data must be 0x11.
    std::fill(src.begin(), src.end(), std::byte{0xFF});
    t.barrier();
  });
  engine_.run();
  EXPECT_EQ(storage[0], std::byte{0x11});
}

TEST_F(DramTest, LargerReadsTakeLonger) {
  make_region(0, 1 * MiB);
  std::vector<std::byte> dst(64 * KiB);
  const SimTime t_small = timed_read(0, 1024, dst.data());
  Engine e2;  // fresh timeline
  const SimTime t_big = [&] {
    DramModel d2(e2, spec_);
    std::vector<std::byte> s2(1 * MiB);
    d2.add_region(DramRegion{0, 1 * MiB, 0, 0, false, s2.data()});
    SimTime elapsed = -1;
    e2.spawn("r", [&] {
      CompletionTracker t(e2);
      t.issue();
      d2.read(0, dst.data(), 64 * KiB, dma_, 4, [&t] { t.complete(); });
      t.barrier();
      elapsed = e2.now();
    });
    e2.run();
    return elapsed;
  }();
  EXPECT_GT(t_big, t_small);
  // 64x the data should take several times longer; fixed per-request
  // overheads (issue + latency + bank processing) dilute the ratio.
  EXPECT_GT(t_big, t_small * 4);
}

TEST_F(DramTest, SequentialReadsAvoidRowMissPenalty) {
  make_region(0, 1 * MiB);
  std::vector<std::byte> dst(2048);
  engine_.spawn("r", [&] {
    CompletionTracker t(engine_);
    for (int i = 0; i < 8; ++i) {
      t.issue();
      dram_.read(static_cast<std::uint64_t>(i) * 2048, dst.data(), 2048, dma_, 4,
                 [&t] { t.complete(); });
    }
    t.barrier();
  });
  engine_.run();
  // First request misses (cold), the 7 sequential followers hit.
  EXPECT_EQ(dram_.stats().row_misses, 1u);
}

TEST_F(DramTest, StridedReadsPayRowMissEachTime) {
  make_region(0, 1 * MiB);
  std::vector<std::byte> dst(2048);
  engine_.spawn("r", [&] {
    CompletionTracker t(engine_);
    for (int i = 0; i < 8; ++i) {
      t.issue();
      dram_.read(static_cast<std::uint64_t>(i) * 16384, dst.data(), 2048, dma_, 4,
                 [&t] { t.complete(); });
    }
    t.barrier();
  });
  engine_.run();
  EXPECT_EQ(dram_.stats().row_misses, 8u);
}

// --- the 256-bit alignment rule (paper Section IV-B) ---

TEST_F(DramTest, UnalignedReadReturnsWrongDataFaithfully) {
  auto& storage = make_region(0, 4096);
  std::iota(reinterpret_cast<unsigned char*>(storage.data()),
            reinterpret_cast<unsigned char*>(storage.data()) + 256, 0);
  std::vector<std::byte> dst(16);
  timed_read(34, 16, dst.data());  // 34 is not 32-aligned
  // Faithful mode returns data from the aligned-down address 32.
  EXPECT_EQ(dst[0], storage[32]);
  EXPECT_NE(dst[0], storage[34]);
  EXPECT_EQ(dram_.stats().unaligned_reads, 1u);
}

TEST_F(DramTest, AlignedReadIsCorrect) {
  auto& storage = make_region(0, 4096);
  std::iota(reinterpret_cast<unsigned char*>(storage.data()),
            reinterpret_cast<unsigned char*>(storage.data()) + 256, 0);
  std::vector<std::byte> dst(16);
  timed_read(64, 16, dst.data());
  EXPECT_EQ(std::memcmp(dst.data(), storage.data() + 64, 16), 0);
  EXPECT_EQ(dram_.stats().unaligned_reads, 0u);
}

TEST_F(DramTest, TrapPolicyThrowsOnUnaligned) {
  spec_.alignment_policy = AlignmentPolicy::kTrap;
  DramModel strict(engine_, spec_);
  std::vector<std::byte> s(4096);
  strict.add_region(DramRegion{0, 4096, 0, 0, false, s.data()});
  std::vector<std::byte> dst(16);
  engine_.spawn("r", [&] {
    strict.read(34, dst.data(), 16, dma_, 4, nullptr);
  });
  EXPECT_THROW(engine_.run(), ApiError);
}

TEST_F(DramTest, PermissivePolicyReadsCorrectly) {
  spec_.alignment_policy = AlignmentPolicy::kPermissive;
  DramModel lax(engine_, spec_);
  std::vector<std::byte> s(4096);
  std::iota(reinterpret_cast<unsigned char*>(s.data()),
            reinterpret_cast<unsigned char*>(s.data()) + 256, 0);
  lax.add_region(DramRegion{0, 4096, 0, 0, false, s.data()});
  std::vector<std::byte> dst(16);
  engine_.spawn("r", [&] {
    CompletionTracker t(engine_);
    t.issue();
    lax.read(34, dst.data(), 16, dma_, 4, [&t] { t.complete(); });
    t.barrier();
  });
  engine_.run();
  EXPECT_EQ(std::memcmp(dst.data(), s.data() + 34, 16), 0);
}

TEST_F(DramTest, UnalignedNonContiguousWriteCorrupts) {
  auto& storage = make_region(0, 4096);
  std::vector<std::byte> src(16, std::byte{0x7E});
  timed_write(34, 16, src.data());  // fresh stream: not a continuation
  // Faithful mode: data landed at the aligned-down address 32.
  EXPECT_EQ(storage[32], std::byte{0x7E});
  EXPECT_EQ(storage[34 + 15], std::byte{0});  // intended tail never written
  EXPECT_EQ(dram_.stats().unaligned_writes_corrupted, 1u);
}

TEST_F(DramTest, UnalignedContinuationWriteMerges) {
  auto& storage = make_region(0, 4096);
  std::vector<std::byte> a(34, std::byte{0x01});
  std::vector<std::byte> b(30, std::byte{0x02});
  engine_.spawn("w", [&] {
    CompletionTracker t(engine_);
    t.issue();
    dram_.write(0, a.data(), 34, dma_, 4, [&t] { t.complete(); });
    t.issue();
    // Continues the previous write at its (unaligned) end: merged correctly,
    // matching the paper's observation about contiguous unaligned writes.
    dram_.write(34, b.data(), 30, dma_, 4, [&t] { t.complete(); });
    t.barrier();
  });
  engine_.run();
  EXPECT_EQ(storage[33], std::byte{0x01});
  EXPECT_EQ(storage[34], std::byte{0x02});
  EXPECT_EQ(storage[63], std::byte{0x02});
  EXPECT_EQ(dram_.stats().unaligned_writes_merged, 1u);
  EXPECT_EQ(dram_.stats().unaligned_writes_corrupted, 0u);
}

// --- interleaving ---

TEST_F(DramTest, InterleavedRegionFunctionalRoundTrip) {
  make_region(1 * GiB, 64 * KiB, /*bank=*/0, /*page_size=*/1024);
  std::vector<std::byte> in(8192), out(8192);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::byte>(i * 7);
  dram_.host_write(1 * GiB, in.data(), in.size());
  dram_.host_read(1 * GiB, out.data(), out.size());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST_F(DramTest, InterleavedReadCountsSegments) {
  make_region(1 * GiB, 64 * KiB, 0, 1024);
  std::vector<std::byte> dst(8192);
  timed_read(1 * GiB, 8192, dst.data());
  EXPECT_EQ(dram_.stats().interleave_segments, 8u);
}

TEST_F(DramTest, InterleavedSmallPagesSlowerThanLargePages) {
  // Table VI, replication 0: small pages add serialized DMA sub-request work.
  auto time_with_page = [&](std::uint64_t page) {
    Engine e;
    DramModel d(e, spec_);
    std::vector<std::byte> s(64 * KiB);
    d.add_region(DramRegion{0, 64 * KiB, -1, page, false, s.data()});
    std::vector<std::byte> dst(16384);
    ResourceTimeline dma;
    SimTime elapsed = -1;
    e.spawn("r", [&] {
      CompletionTracker t(e);
      t.issue();
      d.read(0, dst.data(), 16384, dma, 4, [&t] { t.complete(); });
      t.barrier();
      elapsed = e.now();
    });
    e.run();
    return elapsed;
  };
  const SimTime t64k = time_with_page(64 * KiB);
  const SimTime t1k = time_with_page(1 * KiB);
  EXPECT_GT(t1k, t64k * 3);
}

TEST_F(DramTest, PageSizeAbove64KRejected) {
  std::vector<std::byte> s(1 * MiB);
  EXPECT_THROW(
      dram_.add_region(DramRegion{0, 1 * MiB, -1, 128 * KiB, false, s.data()}),
      CheckError);
  EXPECT_THROW(
      dram_.add_region(DramRegion{0, 1 * MiB, -1, 1000, false, s.data()}),
      CheckError);  // tt-metal pages must be powers of two
  // Coarse stripes take arbitrary sizes, including above 64K.
  dram_.add_region(DramRegion{0, 1 * MiB, -1, 100 * KiB, true, s.data()});
}

TEST_F(DramTest, CoarseStripeFunctionalRoundTrip) {
  make_region(0, 1 * MiB, 0, 0);
  std::vector<std::byte> s(1 * MiB);
  dram_.add_region(DramRegion{4 * GiB, 1 * MiB, -1, 100000, true, s.data()});
  std::vector<std::byte> in(256 * KiB), out(256 * KiB);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::byte>(i * 13);
  dram_.host_write(4 * GiB + 1234 * 32, in.data(), in.size());
  dram_.host_read(4 * GiB + 1234 * 32, out.data(), out.size());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST_F(DramTest, BalancedCoarseStripesRoundRobinOverBanks) {
  // The hashed stripe->bank placement (allocator-order model) deals a small
  // stripe count unevenly; a `balanced` coarse region must round-robin
  // exactly. Sixteen stripes mirror grid_buffer_config's slab count.
  std::vector<std::byte> s(1 * MiB);
  const std::uint64_t stripe = 64 * KiB;  // 16 stripes over the 1 MiB region
  DramRegion r{4 * GiB, 1 * MiB, -1, stripe, true, s.data()};
  r.balanced = true;
  dram_.add_region(r);
  const DramRegion& region = dram_.region_of(4 * GiB, 1);
  std::vector<int> per_bank(static_cast<std::size_t>(spec_.dram_banks), 0);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const int b = dram_.serving_bank(region, i * stripe);
    EXPECT_EQ(b, static_cast<int>(i % static_cast<std::uint64_t>(spec_.dram_banks)));
    ++per_bank[static_cast<std::size_t>(b)];
  }
  for (int n : per_bank) EXPECT_EQ(n, 2);

  // Same geometry under the default hash: provably uneven (this imbalance
  // is the post-pipelining hot bank the balanced placement removes).
  std::vector<std::byte> s2(1 * MiB);
  dram_.add_region(DramRegion{5 * GiB, 1 * MiB, -1, stripe, true, s2.data()});
  const DramRegion& hashed = dram_.region_of(5 * GiB, 1);
  std::fill(per_bank.begin(), per_bank.end(), 0);
  for (std::uint64_t i = 0; i < 16; ++i) {
    ++per_bank[static_cast<std::size_t>(dram_.serving_bank(hashed, i * stripe))];
  }
  EXPECT_NE(*std::max_element(per_bank.begin(), per_bank.end()), 2);
}

TEST_F(DramTest, StreamTableTracksMultipleSequentialStreams) {
  // Several cores streaming disjoint slices of one bank should all be row
  // hits after their first access (controller stream prefetch).
  make_region(0, 1 * MiB);
  std::vector<std::byte> dst(2048);
  engine_.spawn("r", [&] {
    CompletionTracker t(engine_);
    for (int step = 0; step < 8; ++step) {
      for (int stream = 0; stream < 4; ++stream) {
        t.issue();
        const std::uint64_t addr =
            static_cast<std::uint64_t>(stream) * 256 * KiB + static_cast<std::uint64_t>(step) * 2048;
        dram_.read(addr, dst.data(), 2048, dma_, 4, [&t] { t.complete(); });
      }
    }
    t.barrier();
  });
  engine_.run();
  // Only the 4 cold first-touches miss.
  EXPECT_EQ(dram_.stats().row_misses, 4u);
}

TEST_F(DramTest, CoarseRegionMergeProbeUsesServingBank) {
  // Regression: the unaligned-merge probe and the continuation tracking used
  // to compute the bank with a raw InterleaveMap, bypassing the coarse
  // stripe->bank scramble. Two stripes whose *naive* page-index banks
  // collide but whose serving banks differ then aliased to one tracking
  // slot, and an interfering write on the other stripe broke a legitimate
  // continuation (corrupting instead of merging).
  std::vector<std::byte> s(1 * MiB);
  const std::uint64_t base = 4 * GiB;
  const std::uint64_t stripe = 4096;
  dram_.add_region(DramRegion{base, 1 * MiB, -1, stripe, true, s.data()});
  const DramRegion& region = dram_.region_of(base, 1);

  // An interfering stripe whose naive bank (stripe index mod banks) equals
  // stripe 0's but whose scrambled serving bank differs.
  const int b0 = dram_.serving_bank(region, 0);
  std::uint64_t other = 0;
  for (std::uint64_t k = static_cast<std::uint64_t>(spec_.dram_banks);
       k * stripe < 1 * MiB; k += static_cast<std::uint64_t>(spec_.dram_banks)) {
    if (dram_.serving_bank(region, k * stripe) != b0) {
      other = k * stripe;
      break;
    }
  }
  ASSERT_NE(other, 0u) << "scramble degenerated: no differing stripe found";

  std::vector<std::byte> a(34, std::byte{0x01});
  std::vector<std::byte> mid(64, std::byte{0x5A});
  std::vector<std::byte> b(30, std::byte{0x02});
  timed_write(base, 34, a.data());                // ends unaligned at +34
  timed_write(base + other, 64, mid.data());     // different serving bank
  timed_write(base + 34, 30, b.data());          // legitimate continuation
  EXPECT_EQ(dram_.stats().unaligned_writes_merged, 1u);
  EXPECT_EQ(dram_.stats().unaligned_writes_corrupted, 0u);
  EXPECT_EQ(s[33], std::byte{0x01});
  EXPECT_EQ(s[34], std::byte{0x02});
  EXPECT_EQ(s[63], std::byte{0x02});
}

TEST_F(DramTest, StuckBankFaultsOnNonFirstInterleaveSegment) {
  // Regression: the stuck-bank check consulted only the first byte's bank,
  // so a multi-page interleaved access whose *later* segments crossed the
  // stuck bank read/wrote clean data.
  auto& storage = make_region(0, 64 * KiB, 0, /*page_size=*/1024);
  std::iota(reinterpret_cast<unsigned char*>(storage.data()),
            reinterpret_cast<unsigned char*>(storage.data()) + 4096, 1);
  FaultConfig fc;
  fc.stuck_banks = {2};  // pages 0..3 -> banks 0..3; bank 2 is segment #3
  FaultPlan plan(fc);
  dram_.set_fault_plan(&plan);

  // Touching only bank 0 stays clean.
  std::vector<std::byte> dst(4096);
  timed_read(0, 1024, dst.data());
  EXPECT_EQ(std::memcmp(dst.data(), storage.data(), 1024), 0);
  EXPECT_TRUE(plan.trace().empty());

  // Spanning pages 0..3 must fault on the non-first stuck segment.
  timed_read(0, 4096, dst.data());
  ASSERT_EQ(plan.trace().size(), 1u);
  EXPECT_EQ(plan.trace()[0].kind, FaultKind::kDramBankStuck);
  EXPECT_EQ(dst[0], std::byte{0xFF});
  EXPECT_EQ(dst[4095], std::byte{0xFF});

  // Same for writes: the whole access is silently dropped.
  std::vector<std::byte> src(4096, std::byte{0x77});
  timed_write(0, 4096, src.data());
  EXPECT_NE(storage[0], std::byte{0x77});
  ASSERT_EQ(plan.trace().size(), 2u);
  EXPECT_EQ(plan.trace()[1].kind, FaultKind::kDramBankStuck);
  dram_.set_fault_plan(nullptr);
}

TEST_F(DramTest, FreshDmaTimelineAlwaysPaysScatterPenalty) {
  // Regression: the write-combiner continuation was keyed by the DMA
  // timeline's address, so a brand-new timeline allocated into a recycled
  // heap slot inherited its predecessor's stream and skipped the scatter
  // penalty. Keyed by stable id, a fresh timeline always pays it, even when
  // its write continues the destroyed engine's stream.
  make_region(0, 1 * MiB);
  std::vector<std::byte> src(64, std::byte{0x3C});
  auto timed_write_with = [&](ResourceTimeline& dma, std::uint64_t addr) {
    SimTime elapsed = -1;
    engine_.spawn("w", [&] {
      CompletionTracker t(engine_);
      const SimTime start = engine_.now();
      t.issue();
      dram_.write(addr, src.data(), 64, dma, 4, [&t] { t.complete(); });
      t.barrier();
      elapsed = engine_.now() - start;
    });
    engine_.run();
    return elapsed;
  };

  auto a = std::make_unique<ResourceTimeline>();
  timed_write_with(*a, 0);                       // cold: row miss + scatter
  const SimTime cont = timed_write_with(*a, 64); // continuation: no scatter
  a.reset();
  // New timeline, very likely reusing a's heap slot. Its first write
  // continues the old stream's address, but it is a different engine.
  auto b = std::make_unique<ResourceTimeline>();
  const SimTime fresh = timed_write_with(*b, 128);
  EXPECT_GE(fresh, cont + spec_.write_scatter_penalty);
}

TEST_F(DramTest, BankPipelineOverlapsQueuedRequests) {
  // Two back-to-back reads queue on one bank: with the pipelined service the
  // second request's processing stage runs under the first one's data
  // transfer, so the pair finishes strictly earlier. A single (uncontended)
  // request must cost exactly the same in both modes.
  auto run_reads = [&](bool pipelined, int nreads, DramStats* out) {
    Engine e;
    GrayskullSpec spec = spec_;
    spec.dram_bank_pipeline = pipelined;
    DramModel d(e, spec);
    std::vector<std::byte> s(1 * MiB);
    d.add_region(DramRegion{0, 1 * MiB, 0, 0, false, s.data()});
    std::vector<std::byte> dst(8192);
    ResourceTimeline dma_a, dma_b;
    SimTime elapsed = -1;
    e.spawn("r", [&] {
      CompletionTracker t(e);
      for (int i = 0; i < nreads; ++i) {
        t.issue();
        d.read(static_cast<std::uint64_t>(i) * 8192, dst.data(), 8192,
               i % 2 == 0 ? dma_a : dma_b, 4, [&t] { t.complete(); });
      }
      t.barrier();
      elapsed = e.now();
    });
    e.run();
    if (out != nullptr) *out = d.stats();
    return elapsed;
  };

  EXPECT_EQ(run_reads(false, 1, nullptr), run_reads(true, 1, nullptr));

  DramStats serial, piped;
  const SimTime t_serial = run_reads(false, 2, &serial);
  const SimTime t_piped = run_reads(true, 2, &piped);
  EXPECT_LT(t_piped, t_serial);
  EXPECT_EQ(serial.pipelined_segments, 0u);
  EXPECT_GE(piped.pipelined_segments, 1u);
  EXPECT_EQ(t_serial - t_piped, piped.pipeline_overlap_saved);
}

TEST_F(DramTest, ReadStatsAccumulate) {
  make_region(0, 1 * MiB);
  std::vector<std::byte> dst(1024);
  timed_read(0, 1024, dst.data());
  EXPECT_EQ(dram_.stats().read_requests, 1u);
  EXPECT_EQ(dram_.stats().bytes_read, 1024u);
  dram_.reset_stats();
  EXPECT_EQ(dram_.stats().read_requests, 0u);
}

}  // namespace
}  // namespace ttsim::sim
