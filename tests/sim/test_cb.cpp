#include "ttsim/sim/circular_buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace ttsim::sim {
namespace {

class CbTest : public ::testing::Test {
 protected:
  CbTest() : storage_(kPageSize * kNumPages), cb_(engine_, storage_.data(), kPageSize, kNumPages) {}

  static constexpr std::uint32_t kPageSize = 64;
  static constexpr std::uint32_t kNumPages = 4;

  Engine engine_;
  std::vector<std::byte> storage_;
  CircularBuffer cb_;
};

TEST_F(CbTest, ProducerConsumerPipelineDeliversInOrder) {
  std::vector<int> received;
  engine_.spawn("producer", [&] {
    for (int i = 0; i < 10; ++i) {
      cb_.reserve_back(1);
      std::memcpy(cb_.write_ptr(), &i, sizeof(i));
      engine_.delay(5);
      cb_.push_back(1);
    }
  });
  engine_.spawn("consumer", [&] {
    for (int i = 0; i < 10; ++i) {
      cb_.wait_front(1);
      int v;
      std::memcpy(&v, cb_.read_ptr(), sizeof(v));
      received.push_back(v);
      engine_.delay(9);
      cb_.pop_front(1);
    }
  });
  engine_.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST_F(CbTest, ProducerBlocksWhenFull) {
  SimTime fourth_push = -1;
  engine_.spawn("producer", [&] {
    for (int i = 0; i < 5; ++i) {
      cb_.reserve_back(1);
      cb_.push_back(1);
      if (i == 4) fourth_push = engine_.now();
    }
  });
  engine_.spawn("consumer", [&] {
    engine_.delay(1000);
    cb_.wait_front(1);
    cb_.pop_front(1);
    cb_.wait_front(4);
    cb_.pop_front(4);
  });
  engine_.run();
  // The 5th push can only happen after the consumer pops at t=1000.
  EXPECT_EQ(fourth_push, 1000);
}

TEST_F(CbTest, ConsumerBlocksUntilCommitted) {
  SimTime got = -1;
  engine_.spawn("consumer", [&] {
    cb_.wait_front(1);
    got = engine_.now();
    cb_.pop_front(1);
  });
  engine_.spawn("producer", [&] {
    engine_.delay(77);
    cb_.reserve_back(1);
    cb_.push_back(1);
  });
  engine_.run();
  EXPECT_EQ(got, 77);
}

TEST_F(CbTest, MultiPageOperations) {
  engine_.spawn("p", [&] {
    cb_.reserve_back(3);
    cb_.push_back(3);
  });
  engine_.spawn("c", [&] {
    cb_.wait_front(3);
    EXPECT_EQ(cb_.pages_available(), 3u);
    cb_.pop_front(3);
    EXPECT_EQ(cb_.pages_available(), 0u);
  });
  engine_.run();
}

TEST_F(CbTest, WritePointerWrapsAround) {
  const std::byte* first_page = nullptr;
  engine_.spawn("p", [&] {
    first_page = cb_.write_ptr();
    for (std::uint32_t i = 0; i < kNumPages; ++i) {
      cb_.reserve_back(1);
      cb_.push_back(1);
    }
  });
  engine_.spawn("c", [&] {
    for (std::uint32_t i = 0; i < kNumPages; ++i) {
      cb_.wait_front(1);
      cb_.pop_front(1);
    }
    // After a full cycle the producer page wraps to the start.
    EXPECT_EQ(cb_.write_ptr(), first_page);
  });
  engine_.run();
}

TEST_F(CbTest, PopWithoutDataThrows) {
  engine_.spawn("c", [&] { cb_.pop_front(1); });
  EXPECT_THROW(engine_.run(), CheckError);
}

TEST_F(CbTest, PushBeyondCapacityThrows) {
  engine_.spawn("p", [&] {
    cb_.reserve_back(4);
    cb_.push_back(4);
    cb_.push_back(1);  // no space
  });
  EXPECT_THROW(engine_.run(), CheckError);
}

TEST_F(CbTest, MorePagesThanCapacityThrows) {
  engine_.spawn("p", [&] { cb_.reserve_back(kNumPages + 1); });
  EXPECT_THROW(engine_.run(), CheckError);
}

TEST_F(CbTest, SetReadPtrAliasesArbitraryMemory) {
  // The paper's Section VI extension: FPU ops consume data in place.
  std::vector<std::byte> local(64, std::byte{0x3C});
  engine_.spawn("p", [&] {
    cb_.reserve_back(1);
    cb_.push_back(1);
  });
  engine_.spawn("c", [&] {
    cb_.wait_front(1);
    cb_.set_read_ptr(local.data());
    EXPECT_EQ(cb_.read_ptr(), local.data());
    cb_.pop_front(1);
    // Override is only valid for the page it was set on.
    EXPECT_FALSE(cb_.has_read_ptr_override());
  });
  engine_.run();
}

TEST_F(CbTest, PipelineOverlapsProducerAndConsumer) {
  // With 4 pages, a slow consumer should never leave the producer idle:
  // total time ~= consumer-bound, not producer+consumer.
  SimTime end = 0;
  engine_.spawn("p", [&] {
    for (int i = 0; i < 20; ++i) {
      cb_.reserve_back(1);
      engine_.delay(10);  // produce cost
      cb_.push_back(1);
    }
  });
  engine_.spawn("c", [&] {
    for (int i = 0; i < 20; ++i) {
      cb_.wait_front(1);
      engine_.delay(30);  // consume cost dominates
      cb_.pop_front(1);
    }
    end = engine_.now();
  });
  engine_.run();
  // Consumer-bound bound: 20*30 = 600 plus the initial fill (10).
  EXPECT_LE(end, 640);
  EXPECT_GE(end, 600);
}

}  // namespace
}  // namespace ttsim::sim
