#include "ttsim/sim/fpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ttsim/sim/tensix_core.hpp"

namespace ttsim::sim {
namespace {

/// Fills one committed CB page with a constant BF16 value.
void fill_page(CircularBuffer& cb, float value) {
  auto* p = reinterpret_cast<bfloat16_t*>(cb.write_ptr());
  for (std::uint32_t i = 0; i < Fpu::kTileElems; ++i) p[i] = bfloat16_t{value};
}

class FpuTest : public ::testing::Test {
 protected:
  FpuTest()
      : core_(engine_, spec_, 0, NocCoord{1, 1}),
        cb_a_(core_.create_cb(0, Fpu::kTileBytes, 2)),
        cb_b_(core_.create_cb(1, Fpu::kTileBytes, 2)),
        cb_out_(core_.create_cb(16, Fpu::kTileBytes, 2)) {}

  /// Run `body` as the compute process.
  void run_compute(std::function<void()> body) {
    engine_.spawn("compute", std::move(body));
    engine_.run();
  }

  GrayskullSpec spec_;
  Engine engine_;
  TensixCore core_;
  CircularBuffer& cb_a_;
  CircularBuffer& cb_b_;
  CircularBuffer& cb_out_;
};

TEST_F(FpuTest, AddTilesElementwise) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 1.5f);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 2.25f);
    cb_b_.push_back(1);
    core_.fpu().add_tiles(cb_a_, cb_b_, 0, 0, 0);
    cb_out_.reserve_back(1);
    core_.fpu().pack_tile(0, cb_out_);
    cb_out_.push_back(1);
  });
  const auto* out = reinterpret_cast<const bfloat16_t*>(cb_out_.read_ptr());
  for (std::uint32_t i = 0; i < Fpu::kTileElems; ++i) {
    EXPECT_EQ(static_cast<float>(out[i]), 3.75f);
  }
}

TEST_F(FpuTest, SubAndMulTiles) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 8.0f);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 2.0f);
    cb_b_.push_back(1);
    core_.fpu().sub_tiles(cb_a_, cb_b_, 0, 0, 0);
    core_.fpu().mul_tiles(cb_a_, cb_b_, 0, 0, 1);
  });
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[0]), 6.0f);
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(1)[512]), 16.0f);
}

TEST_F(FpuTest, ScalarMultiplyViaConstantCb) {
  // The paper's trick: maths ops only take CBs, so multiplying by 0.25 uses
  // a CB whose 1024 entries are all 0.25 (Listing 2, cb_scalar).
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 0.25f);  // cb_scalar
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 10.0f);
    cb_b_.push_back(1);
    core_.fpu().mul_tiles(cb_a_, cb_b_, 0, 0, 0);
  });
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[77]), 2.5f);
}

TEST_F(FpuTest, CopyTile) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, -3.0f);
    cb_a_.push_back(1);
    core_.fpu().copy_tile(cb_a_, 0, 2);
  });
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(2)[0]), -3.0f);
}

TEST_F(FpuTest, OpsChargeSimulatedTime) {
  SimTime elapsed = 0;
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 1.0f);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 1.0f);
    cb_b_.push_back(1);
    const SimTime t0 = engine_.now();
    core_.fpu().add_tiles(cb_a_, cb_b_, 0, 0, 0);
    elapsed = engine_.now() - t0;
  });
  EXPECT_EQ(elapsed, spec_.tile_math_cost);
}

TEST_F(FpuTest, ResultsAreBf16Rounded) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 256.0f);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 1.0f);
    cb_b_.push_back(1);
    core_.fpu().add_tiles(cb_a_, cb_b_, 0, 0, 0);
  });
  // 257 is not representable in BF16; ties-to-even rounds to 256.
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[0]), 256.0f);
}

TEST_F(FpuTest, RespectsReadPtrOverride) {
  // cb_set_rd_ptr path: math ops must consume the aliased memory.
  std::vector<bfloat16_t> local(Fpu::kTileElems, bfloat16_t{5.0f});
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 1.0f);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    fill_page(cb_b_, 2.0f);
    cb_b_.push_back(1);
    cb_a_.set_read_ptr(reinterpret_cast<const std::byte*>(local.data()));
    core_.fpu().add_tiles(cb_a_, cb_b_, 0, 0, 0);
  });
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[0]), 7.0f);
}

TEST_F(FpuTest, AbsTile) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    auto* p = reinterpret_cast<bfloat16_t*>(cb_a_.write_ptr());
    for (std::uint32_t i = 0; i < Fpu::kTileElems; ++i) {
      p[i] = bfloat16_t{(i % 2 == 0) ? -3.5f : 2.0f};
    }
    cb_a_.push_back(1);
    core_.fpu().copy_tile(cb_a_, 0, 0);
    core_.fpu().abs_tile(0);
  });
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[0]), 3.5f);
  EXPECT_EQ(static_cast<float>(core_.fpu().reg(0)[1]), 2.0f);
}

TEST_F(FpuTest, ReduceMaxFindsTheMaximumLane) {
  bfloat16_t result{};
  run_compute([&] {
    cb_a_.reserve_back(1);
    auto* p = reinterpret_cast<bfloat16_t*>(cb_a_.write_ptr());
    for (std::uint32_t i = 0; i < Fpu::kTileElems; ++i) {
      p[i] = bfloat16_t{static_cast<float>(i % 97)};
    }
    p[777] = bfloat16_t{1000.0f};
    cb_a_.push_back(1);
    core_.fpu().copy_tile(cb_a_, 0, 0);
    result = core_.fpu().reduce_max(0);
  });
  EXPECT_EQ(static_cast<float>(result), 1000.0f);
}

TEST_F(FpuTest, ReduceMaxPropagatesNan) {
  bfloat16_t result{};
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, 1.0f);
    auto* p = reinterpret_cast<bfloat16_t*>(cb_a_.write_ptr());
    p[500] = std::numeric_limits<bfloat16_t>::quiet_NaN();
    cb_a_.push_back(1);
    core_.fpu().copy_tile(cb_a_, 0, 0);
    result = core_.fpu().reduce_max(0);
  });
  EXPECT_TRUE(result.is_nan());
}

TEST_F(FpuTest, AbsOfNegativeZeroIsPositiveZero) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    fill_page(cb_a_, -0.0f);
    cb_a_.push_back(1);
    core_.fpu().copy_tile(cb_a_, 0, 0);
    core_.fpu().abs_tile(0);
  });
  EXPECT_EQ(core_.fpu().reg(0)[0].bits(), 0x0000);
}

TEST_F(FpuTest, DstRegisterOutOfRangeThrows) {
  run_compute([&] {
    cb_a_.reserve_back(1);
    cb_a_.push_back(1);
    cb_b_.reserve_back(1);
    cb_b_.push_back(1);
  });
  EXPECT_THROW(core_.fpu().reg(spec_.dst_registers), CheckError);
  EXPECT_THROW(core_.fpu().reg(-1), CheckError);
}

TEST_F(FpuTest, PackIntoTooSmallCbThrows) {
  Engine e2;
  TensixCore core2(e2, spec_, 1, NocCoord{1, 2});
  auto& tiny = core2.create_cb(3, 128, 2);  // page smaller than a tile
  e2.spawn("c", [&] {
    tiny.reserve_back(1);
    core2.fpu().pack_tile(0, tiny);
  });
  EXPECT_THROW(e2.run(), CheckError);
}

TEST(TensixCore, CbAndSemaphoreRegistry) {
  GrayskullSpec spec;
  Engine e;
  TensixCore core(e, spec, 0, NocCoord{1, 1});
  core.create_cb(0, 64, 2);
  EXPECT_TRUE(core.has_cb(0));
  EXPECT_FALSE(core.has_cb(1));
  EXPECT_THROW(core.cb(1), ApiError);
  EXPECT_THROW(core.create_cb(0, 64, 2), CheckError);  // duplicate
  core.create_semaphore(0, 1);
  EXPECT_EQ(core.semaphore(0).value(), 1);
  EXPECT_THROW(core.semaphore(9), ApiError);
  core.reset();
  EXPECT_FALSE(core.has_cb(0));
}

TEST(TensixCore, CbIdRangeEnforced) {
  GrayskullSpec spec;
  Engine e;
  TensixCore core(e, spec, 0, NocCoord{1, 1});
  EXPECT_THROW(core.create_cb(32, 64, 2), CheckError);
  EXPECT_THROW(core.create_cb(-1, 64, 2), CheckError);
}

TEST(Grayskull, WorkerGridGeometry) {
  Grayskull gs;
  EXPECT_EQ(gs.worker_count(), 108);
  // Workers span columns 1..12, rows 0..8.
  EXPECT_EQ(gs.worker_coord(0).x, 1);
  EXPECT_EQ(gs.worker_coord(0).y, 0);
  EXPECT_EQ(gs.worker_coord(11).x, 12);
  EXPECT_EQ(gs.worker_coord(12).y, 1);
  EXPECT_EQ(gs.worker_coord(107).y, 8);
  EXPECT_THROW(gs.worker(108), CheckError);
}

TEST(Grayskull, BankCoordsFlankTheGrid) {
  Grayskull gs;
  for (int b = 0; b < 8; ++b) {
    const auto c = gs.bank_coord(b);
    EXPECT_TRUE(c.x == 0 || c.x == 13) << "bank " << b;
  }
}

TEST(Grayskull, HopsArePositiveAndSymmetricEnough) {
  Grayskull gs;
  auto& noc = gs.noc(0);
  const int h = noc.hops(gs.worker_coord(0), gs.bank_coord(0));
  EXPECT_GT(h, 0);
  EXPECT_EQ(noc.hops(gs.bank_coord(0), gs.worker_coord(0)), h);
}

}  // namespace
}  // namespace ttsim::sim
