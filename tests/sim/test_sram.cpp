#include "ttsim/sim/sram.hpp"

#include <gtest/gtest.h>

namespace ttsim::sim {
namespace {

TEST(Sram, AllocatesAlignedSequentially) {
  Sram s(1 * MiB);
  EXPECT_EQ(s.allocate(100), 0u);
  EXPECT_EQ(s.allocate(100), 128u);  // 100 rounded up to 32-alignment
  EXPECT_EQ(s.used(), 228u);
}

TEST(Sram, CustomAlignment) {
  Sram s(1 * MiB);
  s.allocate(1);
  EXPECT_EQ(s.allocate(16, 4096), 4096u);
}

TEST(Sram, ExhaustionThrows) {
  Sram s(1024);
  s.allocate(1000);
  EXPECT_THROW(s.allocate(100), ApiError);
}

TEST(Sram, ExactFitSucceeds) {
  Sram s(1024);
  EXPECT_EQ(s.allocate(1024), 0u);
  EXPECT_THROW(s.allocate(1), ApiError);
}

TEST(Sram, OneMegabyteIsTheRealBudget) {
  // The paper's Section VI kernel keeps 4 batches of 1026 elements plus CBs
  // in the 1 MB SRAM; verify a representative layout fits.
  Sram s(1 * MiB);
  for (int cb = 0; cb < 6; ++cb) s.allocate(2048 * 4);  // 6 CBs x 4 pages
  s.allocate(4 * 1026 * 2);                              // local 4-batch buffer
  EXPECT_LT(s.used(), 1 * MiB);
}

TEST(Sram, ResetReclaimsSpace) {
  Sram s(1024);
  s.allocate(512);
  s.reset();
  EXPECT_EQ(s.allocate(512), 0u);
}

TEST(Sram, HighWaterTracksPeak) {
  Sram s(1024);
  s.allocate(512);
  s.reset();
  s.allocate(100);
  EXPECT_EQ(s.high_water(), 512u);
}

TEST(Sram, DataIsWritable) {
  Sram s(1024);
  const auto off = s.allocate(64);
  s.data(off)[0] = std::byte{0x5A};
  EXPECT_EQ(s.data(off)[0], std::byte{0x5A});
}

}  // namespace
}  // namespace ttsim::sim
