#include "ttsim/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ttsim::sim {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber* self = nullptr;
  Fiber f([&] {
    trace.push_back(1);
    self->yield();
    trace.push_back(3);
  });
  self = &f;
  f.resume();
  trace.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ExceptionPropagatesViaRethrow) {
  Fiber f([] { throw std::runtime_error("boom"); });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_THROW(f.rethrow_if_failed(), std::runtime_error);
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* observed = reinterpret_cast<Fiber*>(1);
  Fiber f([&] { observed = Fiber::current(); });
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Engine, TimeAdvancesWithDelay) {
  Engine e;
  SimTime seen = -1;
  e.spawn("p", [&] {
    e.delay(100);
    seen = e.now();
  });
  e.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, ProcessesInterleaveByTime) {
  Engine e;
  std::vector<std::string> order;
  e.spawn("a", [&] {
    e.delay(10);
    order.push_back("a10");
    e.delay(20);  // wakes at 30
    order.push_back("a30");
  });
  e.spawn("b", [&] {
    e.delay(15);
    order.push_back("b15");
    e.delay(20);  // wakes at 35
    order.push_back("b35");
  });
  e.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a10", "b15", "a30", "b35"}));
}

TEST(Engine, EqualTimesOrderedByInsertion) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn("p" + std::to_string(i), [&, i] {
      e.delay(50);
      order.push_back(i);
    });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksFireAtScheduledTime) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule_at(30, [&] { fired.push_back(e.now()); });
  e.schedule_at(10, [&] { fired.push_back(e.now()); });
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 30}));
}

TEST(Engine, SchedulePastThrows) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_EQ(e.now(), 100);
  EXPECT_THROW(e.schedule_at(50, [] {}), CheckError);
}

TEST(Engine, DelayZeroIsAllowed) {
  Engine e;
  int steps = 0;
  e.spawn("p", [&] {
    for (int i = 0; i < 3; ++i) {
      e.delay(0);
      ++steps;
    }
  });
  e.run();
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, NegativeDelayThrows) {
  Engine e;
  e.spawn("p", [&] { e.delay(-1); });
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, ExceptionInProcessSurfacesFromRun) {
  Engine e;
  e.spawn("bad", [] { throw std::runtime_error("kernel fault"); });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int ticks = 0;
  e.spawn("p", [&] {
    for (int i = 0; i < 10; ++i) {
      e.delay(100);
      ++ticks;
    }
  });
  EXPECT_FALSE(e.run_until(450));
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(e.now(), 450);
  EXPECT_TRUE(e.run_until(2000));
  EXPECT_EQ(ticks, 10);
}

TEST(Engine, RunUntilAdvancesIdleClock) {
  Engine e;
  EXPECT_TRUE(e.run_until(5000));
  EXPECT_EQ(e.now(), 5000);
}

TEST(Engine, DeterministicEventCount) {
  auto run_once = [] {
    Engine e;
    for (int i = 0; i < 8; ++i) {
      e.spawn("p", [&e] {
        for (int j = 0; j < 20; ++j) e.delay(7);
      });
    }
    e.run();
    return e.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, SpawnFromInsideProcess) {
  Engine e;
  std::vector<int> order;
  e.spawn("parent", [&] {
    e.delay(10);
    order.push_back(1);
    e.spawn("child", [&] {
      order.push_back(2);
      e.delay(5);
      order.push_back(3);
    });
    e.delay(1);
    order.push_back(4);  // at t=11, child wakes at 15
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
}

TEST(Engine, CurrentOutsideProcessThrows) {
  Engine e;
  EXPECT_THROW(e.current(), CheckError);
}

}  // namespace
}  // namespace ttsim::sim
