/// \file test_chiplink.cpp
/// ChipLinkFabric unit tests: per-hop timing math, line vs ring routing,
/// per-link serialisation, traffic stats, spec-derived configs, trace track
/// naming, and deterministic fault injection (drop -> bounded retransmit ->
/// ChipLinkError, duplicates re-occupying the wire).

#include <gtest/gtest.h>

#include "ttsim/common/check.hpp"
#include "ttsim/sim/chiplink.hpp"

namespace ttsim::sim {
namespace {

ChipLinkConfig flat_config() {
  ChipLinkConfig c;
  c.link_gbs = 10.0;
  c.link_latency = 2 * kMicrosecond;
  return c;
}

TEST(ChipLink, SingleHopTimingMath) {
  ChipLinkFabric fab(2, flat_config());
  const std::uint64_t bytes = 1 * MiB;
  const SimTime wire = transfer_time(bytes, 10.0);
  const SimTime t0 = 5 * kMicrosecond;
  EXPECT_EQ(fab.transfer(0, 1, bytes, t0), t0 + wire + 2 * kMicrosecond);
  // Bonding two parallel links halves the serialisation, not the latency.
  ChipLinkConfig bonded = flat_config();
  bonded.parallel_links = 2;
  ChipLinkFabric fab2(2, bonded);
  EXPECT_EQ(fab2.transfer(0, 1, bytes, t0), t0 + wire / 2 + 2 * kMicrosecond);
}

TEST(ChipLink, StoreAndForwardChargesEveryHop) {
  ChipLinkFabric fab(4, flat_config());
  const std::uint64_t bytes = 64 * KiB;
  const SimTime per_hop = transfer_time(bytes, 10.0) + 2 * kMicrosecond;
  EXPECT_EQ(fab.hops(0, 3), 3);
  EXPECT_EQ(fab.transfer(0, 3, bytes, 0), 3 * per_hop);
  // Transit traffic shows up on every intermediate link.
  EXPECT_EQ(fab.link_stats(0, 1).transfers, 1u);
  EXPECT_EQ(fab.link_stats(1, 2).transfers, 1u);
  EXPECT_EQ(fab.link_stats(2, 3).transfers, 1u);
  EXPECT_EQ(fab.link_stats(3, 2).transfers, 0u);
  EXPECT_EQ(fab.totals().bytes, 3u * bytes);
}

TEST(ChipLink, RingRoutesShorterArc) {
  ChipLinkConfig ring = flat_config();
  ring.topology = ChipLinkTopology::kRing;
  ChipLinkFabric fab(6, ring);
  EXPECT_EQ(fab.hops(0, 5), 1);  // wrap link beats the 5-hop line walk
  EXPECT_EQ(fab.hops(0, 3), 3);
  EXPECT_EQ(fab.hops(4, 1), 3);
  const std::uint64_t bytes = 32 * KiB;
  const SimTime per_hop = transfer_time(bytes, 10.0) + 2 * kMicrosecond;
  EXPECT_EQ(fab.transfer(0, 5, bytes, 0), per_hop);
  EXPECT_EQ(fab.link_stats(0, 5).transfers, 1u);
  // A line fabric of the same size has no wrap link at all.
  ChipLinkFabric line(6, flat_config());
  EXPECT_EQ(line.hops(0, 5), 5);
  EXPECT_THROW(line.link_stats(0, 5), CheckError);
}

TEST(ChipLink, ConcurrentMessagesSerialiseOnOneLink) {
  ChipLinkFabric fab(2, flat_config());
  const std::uint64_t bytes = 256 * KiB;
  const SimTime wire = transfer_time(bytes, 10.0);
  const SimTime first = fab.transfer(0, 1, bytes, 0);
  // Injected at the same instant: queues behind the first frame's wire
  // occupancy, so delivery slips by exactly one serialisation time.
  const SimTime second = fab.transfer(0, 1, bytes, 0);
  EXPECT_EQ(second, first + wire);
  // The reverse direction is an independent physical link — no queueing.
  EXPECT_EQ(fab.transfer(1, 0, bytes, 0), first);
  EXPECT_EQ(fab.link_stats(0, 1).busy, 2 * wire);
}

TEST(ChipLink, FromSpecPicksEthernetOrPcie) {
  const auto wh = ChipLinkConfig::from_spec(DeviceSpec::wormhole());
  EXPECT_DOUBLE_EQ(wh.link_gbs, 12.0);
  EXPECT_EQ(wh.link_latency, 1 * kMicrosecond);
  // Grayskull has no Ethernet ports: the fabric stands in for the PCIe-host
  // bounce at the card's PCIe bandwidth.
  const DeviceSpec gs;
  const auto pc = ChipLinkConfig::from_spec(gs);
  EXPECT_DOUBLE_EQ(pc.link_gbs, gs.pcie_gbs);
  EXPECT_EQ(pc.link_latency, gs.pcie_latency);
}

TEST(ChipLink, TraceTracksNameGlobalCardIds) {
  ChipLinkConfig cfg = flat_config();
  cfg.enable_trace = true;
  ChipLinkFabric fab(3, cfg, {4, 7, 9});
  auto* sink = fab.trace();
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->track_count(), 4u);
  EXPECT_EQ(sink->track_name(0), "eth/card4->card7");
  EXPECT_EQ(sink->track_name(1), "eth/card7->card9");
  EXPECT_EQ(sink->track_name(2), "eth/card7->card4");
  EXPECT_EQ(sink->track_name(3), "eth/card9->card7");
  fab.transfer(0, 2, 1024, 0);
  EXPECT_EQ(sink->size(), 2u);  // one event per hop
}

TEST(ChipLink, DropsRetransmitThenSurfaceRetryableError) {
  ChipLinkConfig cfg = flat_config();
  FaultConfig fc;
  fc.noc_drop_prob = 1.0;  // every frame dropped: the budget must exhaust
  cfg.fault_plan = std::make_shared<FaultPlan>(fc);
  cfg.max_retransmits = 3;
  ChipLinkFabric fab(2, cfg);
  try {
    fab.transfer(0, 1, 4096, 0);
    FAIL() << "expected ChipLinkError";
  } catch (const ChipLinkError& e) {
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_EQ(fab.link_stats(0, 1).retransmits, 3u);
}

TEST(ChipLink, DuplicatesChargeTheWireTwice) {
  ChipLinkConfig cfg = flat_config();
  FaultConfig fc;
  fc.noc_dup_prob = 1.0;
  cfg.fault_plan = std::make_shared<FaultPlan>(fc);
  ChipLinkFabric fab(2, cfg);
  const std::uint64_t bytes = 128 * KiB;
  const SimTime wire = transfer_time(bytes, 10.0);
  const SimTime clean = wire + 2 * kMicrosecond;
  EXPECT_GE(fab.transfer(0, 1, bytes, 0), clean);
  EXPECT_EQ(fab.link_stats(0, 1).duplicates, 1u);
  EXPECT_EQ(fab.link_stats(0, 1).busy, 2 * wire);
}

TEST(ChipLink, FaultScheduleIsDeterministic) {
  auto run = [] {
    ChipLinkConfig cfg = flat_config();
    FaultConfig fc;
    fc.seed = 99;
    fc.noc_drop_prob = 0.3;
    fc.noc_dup_prob = 0.2;
    fc.noc_delay_prob = 0.2;
    cfg.fault_plan = std::make_shared<FaultPlan>(fc);
    cfg.max_retransmits = 64;
    ChipLinkFabric fab(3, cfg);
    SimTime last = 0;
    for (int i = 0; i < 20; ++i) last = fab.transfer(0, 2, 8192, last);
    const auto t = fab.totals();
    return std::tuple(last, t.retransmits, t.duplicates, t.bytes);
  };
  EXPECT_EQ(run(), run());
}

TEST(ChipLink, RejectsMalformedUse) {
  EXPECT_THROW(ChipLinkFabric(0), CheckError);
  ChipLinkConfig bad;
  bad.link_gbs = 0.0;
  EXPECT_THROW(ChipLinkFabric(2, bad), CheckError);
  ChipLinkFabric fab(2);
  EXPECT_THROW(fab.transfer(0, 0, 64, 0), CheckError);
  EXPECT_THROW(fab.transfer(0, 1, 0, 0), CheckError);
  EXPECT_THROW(ChipLinkFabric(3, {}, {1, 2}), CheckError);
}

}  // namespace
}  // namespace ttsim::sim
