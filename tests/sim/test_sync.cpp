#include "ttsim/sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ttsim::sim {
namespace {

TEST(WaitQueue, NotifyWakesInFifoOrder) {
  Engine e;
  WaitQueue q(e);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    e.spawn("w" + std::to_string(i), [&, i] {
      q.wait();
      order.push_back(i);
    });
  }
  e.spawn("waker", [&] {
    e.delay(10);
    q.notify_one();
    e.delay(10);
    q.notify_all();
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, DeadlockDetected) {
  Engine e;
  WaitQueue q(e);
  e.spawn("stuck", [&] { q.wait(); });
  EXPECT_THROW(e.run(), CheckError);
}

TEST(WaitQueue, DeadlockMessageNamesProcess) {
  Engine e;
  WaitQueue q(e);
  e.spawn("jacobi_dm0", [&] { q.wait(); });
  try {
    e.run();
    FAIL() << "expected deadlock";
  } catch (const CheckError& err) {
    EXPECT_NE(std::string(err.what()).find("jacobi_dm0"), std::string::npos);
  }
}

TEST(SimSemaphore, ProducerConsumerHandshake) {
  Engine e;
  SimSemaphore sem(e, 0);
  std::vector<SimTime> consumed;
  e.spawn("producer", [&] {
    for (int i = 0; i < 3; ++i) {
      e.delay(100);
      sem.post();
    }
  });
  e.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) {
      sem.wait();
      consumed.push_back(e.now());
    }
  });
  e.run();
  EXPECT_EQ(consumed, (std::vector<SimTime>{100, 200, 300}));
}

TEST(SimSemaphore, InitialValueConsumable) {
  Engine e;
  SimSemaphore sem(e, 2);
  int got = 0;
  e.spawn("c", [&] {
    sem.wait(2);
    got = 1;
  });
  e.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(sem.value(), 0);
}

TEST(SimSemaphore, TryWait) {
  Engine e;
  SimSemaphore sem(e, 1);
  EXPECT_TRUE(sem.try_wait());
  EXPECT_FALSE(sem.try_wait());
  sem.post(3);
  EXPECT_TRUE(sem.try_wait(3));
}

TEST(SimSemaphore, MultiUnitWaitBlocksUntilEnough) {
  Engine e;
  SimSemaphore sem(e, 0);
  SimTime woke = -1;
  e.spawn("c", [&] {
    sem.wait(3);
    woke = e.now();
  });
  e.spawn("p", [&] {
    e.delay(10);
    sem.post(1);
    e.delay(10);
    sem.post(1);
    e.delay(10);
    sem.post(1);
  });
  e.run();
  EXPECT_EQ(woke, 30);
}

TEST(CompletionTracker, BarrierWaitsForAllCompletions) {
  Engine e;
  CompletionTracker t(e);
  SimTime done = -1;
  e.spawn("issuer", [&] {
    for (SimTime d : {50, 10, 30}) {
      t.issue();
      e.schedule_after(d, [&t] { t.complete(); });
    }
    t.barrier();
    done = e.now();
  });
  e.run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(t.outstanding(), 0u);
  EXPECT_EQ(t.issued_total(), 3u);
}

TEST(CompletionTracker, BarrierWithNothingOutstandingReturnsImmediately) {
  Engine e;
  CompletionTracker t(e);
  SimTime done = -1;
  e.spawn("p", [&] {
    t.barrier();
    done = e.now();
  });
  e.run();
  EXPECT_EQ(done, 0);
}

TEST(CompletionTracker, CompleteWithoutIssueThrows) {
  Engine e;
  CompletionTracker t(e);
  EXPECT_THROW(t.complete(), CheckError);
}

TEST(CompletionTracker, ReusableAcrossBatches) {
  Engine e;
  CompletionTracker t(e);
  std::vector<SimTime> barriers;
  e.spawn("p", [&] {
    for (int batch = 0; batch < 3; ++batch) {
      t.issue();
      e.schedule_after(25, [&t] { t.complete(); });
      t.barrier();
      barriers.push_back(e.now());
    }
  });
  e.run();
  EXPECT_EQ(barriers, (std::vector<SimTime>{25, 50, 75}));
}

}  // namespace
}  // namespace ttsim::sim
