/// \file test_stream_property.cpp
/// Parameterised sweeps of the streaming benchmark: data integrity must hold
/// for every combination of batch geometry, ordering, sync mode and layout,
/// and the model's qualitative laws (Section V's "lessons learnt") must hold
/// across the sweep, not just at hand-picked points.

#include <gtest/gtest.h>

#include "ttsim/stream/stream_bench.hpp"

namespace ttsim::stream {
namespace {

struct Case {
  std::uint32_t read_batch, write_batch;
  bool contiguous, sync_read, sync_write;
  std::uint64_t page;
  int cores;
  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << "r" << c.read_batch << "/w" << c.write_batch
              << (c.contiguous ? "/contig" : "/scattered") << "/sr" << c.sync_read
              << "/sw" << c.sync_write << "/p" << c.page << "/c" << c.cores;
  }
};

class StreamSweep : public ::testing::TestWithParam<Case> {};

TEST_P(StreamSweep, DataIntegrity) {
  const Case& c = GetParam();
  StreamParams p;
  p.rows = 64;
  p.read_batch = c.read_batch;
  p.write_batch = c.write_batch;
  p.contiguous = c.contiguous;
  p.read_sync_each = c.sync_read;
  p.write_sync_each = c.sync_write;
  p.interleave_page = c.page;
  p.num_cores = c.cores;
  const auto r = run_streaming_benchmark(p);
  EXPECT_TRUE(r.verified_ok);
  EXPECT_GT(r.kernel_time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamSweep,
    ::testing::Values(
        Case{16384, 16384, true, false, false, 0, 1},
        Case{4096, 16384, true, false, false, 0, 1},
        Case{64, 16384, true, true, false, 0, 1},
        Case{16384, 64, true, false, true, 0, 1},
        Case{512, 128, false, false, false, 0, 1},
        Case{128, 512, false, true, true, 0, 1},
        Case{2048, 2048, true, false, false, 32 * 1024, 1},
        Case{2048, 2048, false, false, false, 1024, 1},
        Case{16384, 16384, true, false, false, 0, 4},
        Case{1024, 1024, false, false, false, 4096, 8},
        Case{4, 4, true, false, false, 0, 1},
        Case{4, 16384, false, false, false, 0, 2}));

/// Monotone law: runtime never meaningfully improves when the read batch
/// shrinks (the top of the curve is flat — paper Table III's 16K and 8K
/// rows tie — so allow sub-1% wiggle from response pipelining).
TEST(StreamLaws, RuntimeMonotoneInReadBatch) {
  StreamParams p;
  p.rows = 64;
  p.verify = false;
  SimTime prev = 0;
  for (std::uint32_t batch = 16384; batch >= 16; batch /= 4) {
    p.read_batch = batch;
    const auto r = run_streaming_benchmark(p);
    EXPECT_GE(r.kernel_time, prev - prev / 100) << "batch " << batch;
    prev = r.kernel_time;
  }
}

/// Monotone law: per-access sync never beats per-row sync.
TEST(StreamLaws, SyncNeverFaster) {
  for (std::uint32_t batch : {8192u, 1024u, 128u, 16u}) {
    StreamParams p;
    p.rows = 64;
    p.verify = false;
    p.read_batch = batch;
    const auto relaxed = run_streaming_benchmark(p);
    p.read_sync_each = true;
    const auto eager = run_streaming_benchmark(p);
    EXPECT_GE(eager.kernel_time, relaxed.kernel_time) << "batch " << batch;
  }
}

/// Monotone law: non-contiguous access never beats contiguous.
TEST(StreamLaws, ScatteredNeverFaster) {
  for (std::uint32_t batch : {16384u, 1024u, 64u}) {
    StreamParams p;
    p.rows = 64;
    p.verify = false;
    p.read_batch = batch;
    p.write_batch = batch;
    const auto contig = run_streaming_benchmark(p);
    p.contiguous = false;
    const auto scattered = run_streaming_benchmark(p);
    EXPECT_GE(scattered.kernel_time, contig.kernel_time) << "batch " << batch;
  }
}

/// Monotone law: replication overhead grows with the factor.
TEST(StreamLaws, ReplicationMonotone) {
  StreamParams p;
  p.rows = 64;
  p.verify = false;
  SimTime prev = 0;
  for (int f : {1, 2, 4, 8, 16, 32}) {
    p.replication = f;
    const auto r = run_streaming_benchmark(p);
    EXPECT_GE(r.kernel_time, prev) << "factor " << f;
    prev = r.kernel_time;
  }
}

/// Determinism across repeated runs.
TEST(StreamLaws, Deterministic) {
  StreamParams p;
  p.rows = 64;
  p.verify = false;
  p.read_batch = 256;
  p.num_cores = 4;
  const auto a = run_streaming_benchmark(p);
  const auto b = run_streaming_benchmark(p);
  EXPECT_EQ(a.kernel_time, b.kernel_time);
}

}  // namespace
}  // namespace ttsim::stream
