#include "ttsim/stream/stream_bench.hpp"

#include <gtest/gtest.h>

namespace ttsim::stream {
namespace {

/// Small geometry keeps test runtime low; per-row behaviour matches the
/// full 4096-row problem.
StreamParams small() {
  StreamParams p;
  p.rows = 64;
  p.row_bytes = 16384;
  return p;
}

TEST(StreamBench, DataIntegrityContiguous) {
  auto p = small();
  const auto r = run_streaming_benchmark(p);
  EXPECT_TRUE(r.verified_ok);
  EXPECT_GT(r.kernel_time, 0);
}

TEST(StreamBench, DataIntegrityNonContiguous) {
  auto p = small();
  p.contiguous = false;
  p.read_batch = 256;
  p.write_batch = 512;
  EXPECT_TRUE(run_streaming_benchmark(p).verified_ok);
}

TEST(StreamBench, DataIntegrityMismatchedBatches) {
  auto p = small();
  p.read_batch = 4096;
  p.write_batch = 64;
  EXPECT_TRUE(run_streaming_benchmark(p).verified_ok);
}

TEST(StreamBench, DataIntegrityViaLocalBuffer) {
  auto p = small();
  p.via_local_buffer = true;
  EXPECT_TRUE(run_streaming_benchmark(p).verified_ok);
}

TEST(StreamBench, DataIntegrityInterleaved) {
  auto p = small();
  p.interleave_page = 4 * KiB;
  EXPECT_TRUE(run_streaming_benchmark(p).verified_ok);
}

TEST(StreamBench, DataIntegrityMultiCore) {
  auto p = small();
  p.num_cores = 4;
  p.read_batch = 1024;
  EXPECT_TRUE(run_streaming_benchmark(p).verified_ok);
}

TEST(StreamBench, SmallerReadBatchesAreSlower) {
  auto p = small();
  p.verify = false;
  p.read_batch = 16384;
  const auto big = run_streaming_benchmark(p);
  p.read_batch = 64;
  const auto tiny = run_streaming_benchmark(p);
  EXPECT_GT(tiny.kernel_time, big.kernel_time * 4);
}

TEST(StreamBench, PerAccessSyncSlowerThanPerRow) {
  auto p = small();
  p.verify = false;
  p.read_batch = 256;
  const auto nosync = run_streaming_benchmark(p);
  p.read_sync_each = true;
  const auto sync = run_streaming_benchmark(p);
  EXPECT_GT(sync.kernel_time, nosync.kernel_time * 2);
}

TEST(StreamBench, NonContiguousSlowerThanContiguous) {
  auto p = small();
  p.verify = false;
  p.read_batch = 64;
  p.write_batch = 64;
  const auto contig = run_streaming_benchmark(p);
  p.contiguous = false;
  const auto scattered = run_streaming_benchmark(p);
  EXPECT_GT(scattered.kernel_time, contig.kernel_time);
}

TEST(StreamBench, ReplicationAddsOverhead) {
  auto p = small();
  p.verify = false;
  const auto base = run_streaming_benchmark(p);
  p.replication = 8;
  const auto repl = run_streaming_benchmark(p);
  EXPECT_GT(repl.kernel_time, base.kernel_time * 2);
}

TEST(StreamBench, InterleavingHelpsUnderReplication) {
  // Table VI's key result: at replication 32, 32K pages roughly double the
  // throughput of a single bank.
  auto p = small();
  p.verify = false;
  p.replication = 32;
  const auto single = run_streaming_benchmark(p);
  p.interleave_page = 32 * KiB;
  const auto inter = run_streaming_benchmark(p);
  EXPECT_LT(inter.kernel_time, single.kernel_time);
}

TEST(StreamBench, TinyInterleavePagesHurt) {
  auto p = small();
  p.verify = false;
  p.interleave_page = 32 * KiB;
  const auto big_pages = run_streaming_benchmark(p);
  p.interleave_page = 1 * KiB;
  const auto small_pages = run_streaming_benchmark(p);
  EXPECT_GT(small_pages.kernel_time, big_pages.kernel_time * 2);
}

TEST(StreamBench, ViaLocalBufferMuchSlower) {
  // Section V inline: reading into a local buffer and memcpy'ing into the CB
  // is ~10x slower than receiving into the CB directly.
  auto p = small();
  p.verify = false;
  const auto direct = run_streaming_benchmark(p);
  p.via_local_buffer = true;
  const auto copied = run_streaming_benchmark(p);
  EXPECT_GT(copied.kernel_time, direct.kernel_time * 5);
}

TEST(StreamBench, TwoCoresScaleOneDoesNotScaleToEight) {
  // Table VII: streaming saturates the DDR/NoC at two cores.
  auto p = small();
  p.rows = 128;
  p.verify = false;
  const auto c1 = run_streaming_benchmark(p);
  p.num_cores = 2;
  const auto c2 = run_streaming_benchmark(p);
  p.num_cores = 8;
  const auto c8 = run_streaming_benchmark(p);
  EXPECT_LT(c2.kernel_time, c1.kernel_time * 0.7);
  // Eight cores give little beyond two (bandwidth wall).
  EXPECT_GT(c8.kernel_time, c2.kernel_time * 0.45);
}

TEST(StreamBench, InvalidParamsRejected) {
  auto p = small();
  p.read_batch = 100;  // not a power of two
  EXPECT_THROW(run_streaming_benchmark(p), ApiError);
  p = small();
  p.read_batch = 32768;  // larger than a row
  EXPECT_THROW(run_streaming_benchmark(p), ApiError);
  p = small();
  p.num_cores = 7;  // does not divide 64 rows
  EXPECT_THROW(run_streaming_benchmark(p), ApiError);
}

TEST(StreamBench, ReportsGoodput) {
  auto p = small();
  p.verify = false;
  const auto r = run_streaming_benchmark(p);
  EXPECT_GT(r.effective_gbs(), 0.5);
  EXPECT_LT(r.effective_gbs(), 30.0);  // can't beat the aggregate cap
  EXPECT_EQ(r.bytes_read, 64ull * 16384);
}

}  // namespace
}  // namespace ttsim::stream
