/// \file conway.cpp
/// Conway's Game of Life via the generic stencil frontend: eight
/// unit-weight neighbour taps feed the threshold post-op
/// (S==3) + (S==2)*self — the non-linear stress case for the lowering.
/// A deterministic soup evolves on the device; every generation shown is
/// verified bit-exactly against the CPU reference.
///
///   $ ./examples/conway

#include <cstdio>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

int main() {
  using namespace ttsim;

  constexpr std::uint32_t kW = 96, kH = 48;
  constexpr std::uint64_t kSeed = 42;
  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  std::printf("Conway's Game of Life: %ux%u soup, seed %llu\n\n", kW, kH,
              static_cast<unsigned long long>(kSeed));

  for (int gens : {1, 8, 32}) {
    auto p = core::gallery::life(kW, kH, gens, kSeed);
    const auto r = core::run_general_stencil_on_device(p, cfg);

    const auto ref = cpu::general_reference_bf16(p);
    bool exact = true;
    int live = 0;
    for (std::size_t i = 0; i < r.solution.size(); ++i) {
      if (static_cast<float>(ref[0][i]) != r.solution[i]) exact = false;
      live += r.solution[i] != 0.0f;
    }
    std::printf("gen %3d: %d live cells (%.1f%%), %s\n", gens, live,
                100.0 * live / (kW * kH),
                exact ? "bit-exact vs reference" : "MISMATCH");
    for (std::uint32_t row = 0; row < kH; row += 2) {
      for (std::uint32_t col = 0; col < kW; ++col) {
        // Two rows per character: block glyph by which halves are alive.
        const bool top = r.solution[row * kW + col] != 0.0f;
        const bool bot = row + 1 < kH && r.solution[(row + 1) * kW + col] != 0.0f;
        std::printf("%s", top ? (bot ? "#" : "\"") : (bot ? "," : " "));
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  }
  return 0;
}
