/// \file quickstart.cpp
/// Minimal end-to-end tour of the library: open a simulated Grayskull e150,
/// solve a small Laplace diffusion problem with the optimised (Section VI)
/// Jacobi kernel, verify the result against the BF16-exact CPU reference,
/// and report performance/energy.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/energy/energy.hpp"

int main() {
  using namespace ttsim;

  // 1. Describe the problem: a 256x256 grid, hot left wall, cold right wall.
  core::JacobiProblem problem;
  problem.width = 256;
  problem.height = 256;
  problem.iterations = 200;
  problem.bc_left = 1.0f;
  problem.bc_right = 0.0f;
  problem.bc_top = 0.5f;
  problem.bc_bottom = 0.5f;

  // 2. Configure the device run: the Section VI row-chunk kernel on a 2x2
  //    core grid, with result verification against the CPU reference.
  core::DeviceRunConfig config;
  config.strategy = core::DeviceStrategy::kRowChunk;
  config.cores_x = 2;
  config.cores_y = 2;
  config.verify = true;

  // 3. Run on a freshly opened simulated e150.
  auto device = ttmetal::Device::open();
  const auto result = core::run_jacobi_on_device(*device, problem, config);

  // 4. Report.
  std::printf("solved %ux%u over %d iterations on %d Tensix cores\n",
              problem.width, problem.height, problem.iterations, result.cores_used);
  std::printf("  verified vs BF16 CPU reference: %s\n",
              result.verified_ok ? "bit-exact match" : "MISMATCH");
  std::printf("  simulated kernel time: %.3f ms (%.3f GPt/s)\n",
              to_seconds(result.kernel_time) * 1e3, result.gpts(problem, true));
  std::printf("  with PCIe + dispatch:  %.3f ms (%.3f GPt/s)\n",
              to_seconds(result.total_time) * 1e3, result.gpts(problem));

  energy::CardEnergyModel energy_model(device->spec());
  std::printf("  card energy: %.2f J at %.1f W\n",
              energy_model.joules(result.total_time, result.cores_used),
              energy_model.power_w(result.cores_used));

  // 5. Peek at the solution: the mid row should fall from hot to cold.
  std::printf("  mid-row profile: ");
  for (std::uint32_t c = 0; c < problem.width; c += 32) {
    std::printf("%.2f ", result.solution[(problem.height / 2) * problem.width + c]);
  }
  std::printf("\n");
  return result.verified_ok ? 0 : 1;
}
