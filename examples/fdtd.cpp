/// \file fdtd.cpp
/// 2-D FDTD (transverse-electric mode) via the generic stencil frontend:
/// three fields (Hx, Hy, Ez) advanced by three leapfrog passes per step,
/// with the E-pass reading the freshly updated H fields — the multi-pass
/// immediate-visibility contract. A centred Ez pulse radiates outward; all
/// three device fields are verified bit-exactly against the CPU reference.
///
///   $ ./examples/fdtd

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

int main() {
  using namespace ttsim;

  constexpr std::uint32_t kW = 96, kH = 64;
  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  std::printf("FDTD-2D (TE mode): %ux%u grid, centred Ez pulse\n\n", kW, kH);

  for (int steps : {4, 12, 24}) {
    auto p = core::gallery::fdtd2d(kW, kH, steps);
    const auto r = core::run_general_stencil_on_device(p, cfg);

    const auto ref = cpu::general_reference_bf16(p);
    bool exact = true;
    for (std::size_t f = 0; f < ref.size(); ++f) {
      for (std::size_t i = 0; i < ref[f].size(); ++i) {
        if (static_cast<float>(ref[f][i]) != r.fields[f][i]) exact = false;
      }
    }

    double energy = 0.0;
    float peak = 0.0f;
    for (const auto& field : r.fields) {
      for (const float v : field) energy += static_cast<double>(v) * v;
    }
    for (const float v : r.solution) peak = std::max(peak, std::abs(v));
    std::printf("t=%3d: field energy %.3f, |Ez| peak %.3f, %s\n", steps, energy,
                static_cast<double>(peak),
                exact ? "all 3 fields bit-exact vs reference" : "MISMATCH");

    // Render |Ez| — the expanding wavefront.
    const char* shades = " .:-=+*#%@";
    for (std::uint32_t row = 0; row < kH; row += 4) {
      for (std::uint32_t col = 0; col < kW; col += 2) {
        const float v = peak > 0 ? std::abs(r.solution[row * kW + col]) / peak : 0.0f;
        std::putchar(shades[std::min(9, static_cast<int>(v * 9.99f))]);
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  }
  return 0;
}
