/// \file heat_diffusion.cpp
/// Domain-science example: steady-state heat diffusion in a cross-section of
/// a cooling plate — a hot component on the left wall, coolant channels top
/// and bottom, open (cold) right edge. Demonstrates convergence monitoring
/// by re-running the device solver with growing iteration counts, comparing
/// the accelerator (BF16) against the CPU (FP32) answer, and rendering the
/// temperature field.
///
///   $ ./examples/heat_diffusion [--iters N]

#include <cmath>
#include <cstdio>
#include <cstring>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;

  int max_iters = 800;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) max_iters = std::atoi(argv[i + 1]);
  }

  core::JacobiProblem plate;
  plate.width = 128;
  plate.height = 64;
  plate.bc_left = 90.0f;   // hot component, degrees C
  plate.bc_right = 20.0f;  // ambient edge
  plate.bc_top = 30.0f;    // coolant channel
  plate.bc_bottom = 30.0f; // coolant channel
  plate.initial = 25.0f;

  std::printf("cooling-plate cross section, %ux%u cells\n\n", plate.width, plate.height);
  std::printf("%8s %14s %16s %12s\n", "iters", "device GPt/s", "max|bf16-f32|", "residual");

  std::vector<float> prev;
  for (int iters = 100; iters <= max_iters; iters *= 2) {
    plate.iterations = iters;

    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    const auto device_run = core::run_jacobi_on_device(plate, cfg);
    const auto cpu_run = cpu::jacobi_reference_f32(plate, cpu::max_host_threads());

    // BF16 vs FP32 drift: how much precision the accelerator costs.
    float max_diff = 0.0f;
    for (std::size_t i = 0; i < cpu_run.size(); ++i) {
      max_diff = std::max(max_diff, std::fabs(cpu_run[i] - device_run.solution[i]));
    }
    // Convergence: change since the previous (half-length) run.
    float residual = 0.0f;
    if (!prev.empty()) {
      for (std::size_t i = 0; i < prev.size(); ++i) {
        residual = std::max(residual, std::fabs(device_run.solution[i] - prev[i]));
      }
    }
    prev = device_run.solution;
    std::printf("%8d %14.3f %16.3f %12.4f\n", iters, device_run.gpts(plate, true),
                static_cast<double>(max_diff), static_cast<double>(residual));
  }

  // Render the final temperature field as an ASCII heat map.
  std::printf("\ntemperature field (every 4th cell):\n");
  const char* shades = " .:-=+*#%@";
  for (std::uint32_t r = 0; r < plate.height; r += 4) {
    for (std::uint32_t c = 0; c < plate.width; c += 2) {
      const float t = prev[r * plate.width + c];
      const float norm = (t - 20.0f) / (90.0f - 20.0f);
      const int idx = std::min(9, std::max(0, static_cast<int>(norm * 10.0f)));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
  std::printf("(@ = %.0fC near the hot wall, ' ' = ambient %.0fC)\n", 90.0, 20.0);
  return 0;
}
