/// \file stream_explorer.cpp
/// Interactive-style exploration of DDR access strategies (the Section V
/// methodology as a tool): sweep a chosen parameter of the streaming
/// benchmark and print the resulting bandwidth curve, so users can apply the
/// paper's tuning workflow to their own access patterns.
///
///   $ ./examples/stream_explorer batch        # read batch size sweep
///   $ ./examples/stream_explorer sync         # sync granularity
///   $ ./examples/stream_explorer interleave   # page size sweep
///   $ ./examples/stream_explorer cores        # core scaling

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "ttsim/common/table.hpp"
#include "ttsim/stream/stream_bench.hpp"

using namespace ttsim;

namespace {

stream::StreamParams base_params() {
  stream::StreamParams p;
  p.rows = 256;  // 1/16 of the paper geometry; per-row behaviour identical
  p.verify = false;
  return p;
}

void sweep_batch() {
  Table t{"read batch (B)", "runtime (ms)", "goodput (GB/s)"};
  for (std::uint32_t batch = 16384; batch >= 32; batch /= 2) {
    auto p = base_params();
    p.read_batch = batch;
    const auto r = stream::run_streaming_benchmark(p);
    t.add_row(static_cast<unsigned>(batch), Table::fmt(r.seconds() * 1e3, 2),
              Table::fmt(r.effective_gbs(), 2));
  }
  t.print(std::cout);
  std::printf("\nlesson (paper Section V): fewer, larger DRAM accesses win;\n"
              "below ~1 KiB per request the issue overheads dominate.\n");
}

void sweep_sync() {
  Table t{"batch (B)", "per-row sync (ms)", "per-access sync (ms)", "penalty"};
  for (std::uint32_t batch : {4096u, 1024u, 256u, 64u}) {
    auto p = base_params();
    p.read_batch = batch;
    const auto relaxed = stream::run_streaming_benchmark(p);
    p.read_sync_each = true;
    const auto eager = stream::run_streaming_benchmark(p);
    t.add_row(static_cast<unsigned>(batch), Table::fmt(relaxed.seconds() * 1e3, 2),
              Table::fmt(eager.seconds() * 1e3, 2),
              Table::fmt(eager.seconds() / relaxed.seconds(), 1) + "x");
  }
  t.print(std::cout);
  std::printf("\nlesson: batch your noc_async_read_barrier calls — blocking per\n"
              "access serialises the full round-trip latency every time.\n");
}

void sweep_interleave() {
  Table t{"page size", "no load (ms)", "x16 replicated load (ms)"};
  for (std::uint64_t page : {std::uint64_t{0}, 64 * KiB, 32 * KiB, 8 * KiB, 1 * KiB}) {
    auto p = base_params();
    p.interleave_page = page;
    const auto idle = stream::run_streaming_benchmark(p);
    p.replication = 16;
    const auto loaded = stream::run_streaming_benchmark(p);
    t.add_row(page == 0 ? "none" : std::to_string(page / 1024) + "K",
              Table::fmt(idle.seconds() * 1e3, 2), Table::fmt(loaded.seconds() * 1e3, 2));
  }
  t.print(std::cout);
  std::printf("\nlesson: interleaving costs little when idle and helps a lot\n"
              "under DDR load — but keep pages at 16-32 KiB or larger.\n");
}

void sweep_cores() {
  Table t{"cores", "single-bank (ms)", "interleaved 32K (ms)"};
  for (int cores : {1, 2, 4, 8}) {
    auto p = base_params();
    p.num_cores = cores;
    const auto single = stream::run_streaming_benchmark(p);
    p.interleave_page = 32 * KiB;
    const auto inter = stream::run_streaming_benchmark(p);
    t.add_row(cores, Table::fmt(single.seconds() * 1e3, 2),
              Table::fmt(inter.seconds() * 1e3, 2));
  }
  t.print(std::cout);
  std::printf("\nlesson: a single DRAM bank is a bandwidth wall for streaming —\n"
              "spread buffers across banks before adding cores.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "batch";
  if (mode == "batch") sweep_batch();
  else if (mode == "sync") sweep_sync();
  else if (mode == "interleave") sweep_interleave();
  else if (mode == "cores") sweep_cores();
  else {
    std::printf("usage: %s [batch|sync|interleave|cores]\n", argv[0]);
    return 1;
  }
  return 0;
}
