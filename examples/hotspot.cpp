/// \file hotspot.cpp
/// Thermal simulation with a static power-density field, via the generic
/// stencil frontend: temperature diffuses (FTCS) while two hot blocks in
/// the read-only power map inject heat. Demonstrates a two-field program
/// (one streamed and updated, one streamed read-only) lowered onto the
/// row-chunk kernels, verified bit-exactly against the BF16 CPU reference.
///
///   $ ./examples/hotspot

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

int main() {
  using namespace ttsim;

  constexpr std::uint32_t kW = 128, kH = 64;
  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  std::printf("hotspot: %ux%u thermal grid, two powered blocks\n\n", kW, kH);

  const char* shades = " .:-=+*#%@";
  for (int steps : {10, 40, 160}) {
    auto p = core::gallery::hotspot(kW, kH, steps);
    const auto r = core::run_general_stencil_on_device(p, cfg);

    const auto ref = cpu::general_reference_bf16(p);
    const auto& temp_ref = ref[static_cast<std::size_t>(p.primary_field())];
    bool exact = true;
    for (std::size_t i = 0; i < temp_ref.size(); ++i) {
      if (static_cast<float>(temp_ref[i]) != r.solution[i]) exact = false;
    }

    float peak = 0.0f, mean = 0.0f;
    for (const float v : r.solution) {
      peak = std::max(peak, v);
      mean += v;
    }
    mean /= static_cast<float>(r.solution.size());
    const double gpts = r.kernel_time > 0
        ? static_cast<double>(kW) * kH * steps / 1e9 / to_seconds(r.kernel_time)
        : 0.0;
    std::printf("t=%3d: peak %.3f, mean %.3f, %d cores, %.3f GPt/s, %s\n",
                steps, static_cast<double>(peak), static_cast<double>(mean),
                r.cores_used, gpts, exact ? "bit-exact vs reference" : "MISMATCH");
    for (std::uint32_t row = 0; row < kH; row += 4) {
      for (std::uint32_t col = 0; col < kW; col += 2) {
        const float v = peak > 0 ? r.solution[row * kW + col] / peak : 0.0f;
        const int s = std::min(9, static_cast<int>(v * 9.99f));
        std::putchar(shades[std::max(0, s)]);
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  }
  return 0;
}
