/// \file multicard_scaling.cpp
/// Scale the optimised Jacobi solver across multiple simulated e150 cards
/// (paper Section VII). Grayskulls cannot exchange halos, so card cuts
/// freeze their edges at the initial guess — this example quantifies both
/// the performance gain and the accuracy cost of that compromise, which is
/// exactly the trade the paper discusses for the Wormhole follow-up.
///
///   $ ./examples/multicard_scaling

#include <cmath>
#include <cstdio>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/energy/energy.hpp"

int main() {
  using namespace ttsim;

  core::JacobiProblem p;
  p.width = 2048;
  p.height = 512;
  p.iterations = 100;

  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_x = 2;
  cfg.cores_y = 8;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;

  // Ground truth: whole-domain BF16 solve (what connected cards would give).
  const auto whole = cpu::jacobi_reference_bf16(p);

  sim::GrayskullSpec spec;
  energy::CardEnergyModel energy_model(spec);
  std::printf("%6s %14s %10s %12s %18s\n", "cards", "GPt/s", "speedup", "energy (J)",
              "max cut error");
  double base_gpts = 0.0;
  for (int cards : {1, 2, 4}) {
    const auto r = core::run_jacobi_multicard(p, cards, cfg);
    const double g = r.gpts(p, /*kernel_only=*/true);
    if (cards == 1) base_gpts = g;

    // Accuracy cost of frozen card-boundary halos.
    const auto split = cpu::jacobi_reference_bf16_cards(p, cards);
    float max_err = 0.0f;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      max_err = std::max(max_err, std::fabs(static_cast<float>(whole[i]) -
                                            static_cast<float>(split[i])));
    }
    const double joules = energy_model.joules_multicard(
        r.kernel_time, cfg.cores_x * cfg.cores_y, cards);
    std::printf("%6d %14.3f %9.2fx %12.1f %18.4f\n", cards, g, g / base_gpts, joules,
                static_cast<double>(max_err));
  }
  std::printf(
      "\nPerformance scales near-linearly with cards, but the frozen halos\n"
      "distort the solution near each cut (paper: \"strictly speaking this\n"
      "will not provide the correct answer\"); the interconnected Wormhole\n"
      "removes that compromise.\n");
  return 0;
}
