/// \file multicard_scaling.cpp
/// Scale the optimised Jacobi solver across multiple simulated cards — now
/// through the deep-halo sharded runner (core/sharded.hpp), which cables the
/// cards with chip-to-chip links and exchanges halos every epoch instead of
/// freezing the cut edges.
///
/// The paper's Grayskulls could not exchange halos, so its multi-card runs
/// froze each cut at the initial guess and it notes "strictly speaking this
/// will not provide the correct answer". The Wormhole-style fabric removes
/// that compromise: each row below prints the residual error the frozen-halo
/// scheme *would* have left (max cut error) next to the sharded runner's
/// result, which matches the whole-domain solve bit for bit at every card
/// count.
///
///   $ ./examples/multicard_scaling

#include <cmath>
#include <cstdio>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/energy/energy.hpp"

int main() {
  using namespace ttsim;

  // Big enough that per-epoch dispatch and PCIe staging amortize: sharding
  // pays off for domains that keep every card busy between exchanges.
  core::JacobiProblem p;
  p.width = 2048;
  p.height = 2048;
  p.iterations = 32;

  // Ground truth: whole-domain BF16 solve (what connected cards give).
  const auto whole = cpu::jacobi_reference_bf16(p);

  core::DeviceRunConfig run;
  run.strategy = core::DeviceStrategy::kRowChunk;
  run.cores_x = 2;
  run.cores_y = 8;
  run.buffer_layout = ttmetal::BufferLayout::kStriped;

  sim::GrayskullSpec spec;
  energy::CardEnergyModel energy_model(spec);
  std::printf("%6s %10s %10s %12s %10s %18s %10s\n", "cards", "GPt/s",
              "speedup", "energy (J)", "link KB", "frozen-cut err", "bit-exact");
  double base_gpts = 0.0;
  for (int cards : {1, 2, 4}) {
    std::vector<float> solution;
    SimTime kernel_time = 0;
    double g = 0.0;
    std::uint64_t link_kb = 0;
    if (cards == 1) {
      const auto r = core::run_jacobi_on_device(p, run);
      solution = r.solution;
      kernel_time = r.kernel_time;
      g = r.gpts(p);
      base_gpts = g;
    } else {
      core::ShardedRunConfig scfg;
      scfg.run = run;
      scfg.exchange_every = 16;  // deep halo: 15 extension rows per cut
      const auto r = core::run_jacobi_sharded(p, cards, scfg);
      solution = r.solution;
      kernel_time = r.kernel_time;
      g = r.gpts(p);
      link_kb = r.link_bytes / 1024;
    }

    // What the paper's frozen-halo split would have left behind: the
    // worst-case deviation from the whole-domain solve near the cuts.
    const auto split = cpu::jacobi_reference_bf16_cards(p, cards);
    float frozen_err = 0.0f;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      frozen_err = std::max(frozen_err, std::fabs(static_cast<float>(whole[i]) -
                                                  static_cast<float>(split[i])));
    }

    // The sharded runner has no such compromise: bit-exact vs whole-domain.
    bool exact = solution.size() == whole.size();
    for (std::size_t i = 0; exact && i < whole.size(); ++i) {
      if (solution[i] != static_cast<float>(whole[i])) exact = false;
    }

    const double joules = energy_model.joules_multicard(
        kernel_time, run.cores_x * run.cores_y, cards);
    std::printf("%6d %10.3f %9.2fx %12.1f %10llu %18.4f %10s\n", cards, g,
                g / base_gpts, joules,
                static_cast<unsigned long long>(link_kb),
                static_cast<double>(frozen_err), exact ? "yes" : "NO");
    if (!exact) return 1;
  }
  std::printf(
      "\nPerformance scales with cards and the answer stays bit-exact: the\n"
      "chip-to-chip halo exchange removes the frozen-cut compromise the\n"
      "paper had to accept on unconnected Grayskulls (\"strictly speaking\n"
      "this will not provide the correct answer\").\n");
  return 0;
}
