/// \file multicard_scaling.cpp
/// Scale the optimised Jacobi solver across multiple simulated e150 cards
/// (paper Section VII) — served through the StencilService device pool
/// rather than a hand-rolled per-card loop. Each card's slab is submitted as
/// an independent request; the pool's least-loaded scheduler lands one slab
/// per card and the async three-queue pipeline overlaps their transfers.
///
/// Grayskulls cannot exchange halos, so card cuts freeze their edges at the
/// initial guess — this example quantifies both the performance gain and the
/// accuracy cost of that compromise, which is exactly the trade the paper
/// discusses for the Wormhole follow-up.
///
///   $ ./examples/multicard_scaling

#include <cmath>
#include <cstdio>
#include <vector>

#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/energy/energy.hpp"
#include "ttsim/serve/serve.hpp"

int main() {
  using namespace ttsim;

  core::JacobiProblem p;
  p.width = 2048;
  p.height = 512;
  p.iterations = 100;

  // Ground truth: whole-domain BF16 solve (what connected cards would give).
  const auto whole = cpu::jacobi_reference_bf16(p);

  sim::GrayskullSpec spec;
  energy::CardEnergyModel energy_model(spec);
  std::printf("%6s %14s %10s %12s %18s %10s\n", "cards", "GPt/s", "speedup",
              "energy (J)", "max cut error", "bit-exact");
  double base_gpts = 0.0;
  for (int cards : {1, 2, 4}) {
    serve::ServiceConfig cfg;
    cfg.cards = cards;
    cfg.spec = spec;
    cfg.run.strategy = core::DeviceStrategy::kRowChunk;
    cfg.run.cores_x = 2;
    cfg.run.cores_y = 8;
    cfg.run.buffer_layout = ttmetal::BufferLayout::kStriped;
    cfg.max_batch = 1;  // one slab per launch; scaling comes from the pool
    serve::StencilService svc(cfg);

    // The same Y split run_jacobi_multicard uses: interior cut edges see the
    // frozen initial guess as their boundary condition.
    const std::uint32_t base = p.height / static_cast<std::uint32_t>(cards);
    const std::uint32_t extra = p.height % static_cast<std::uint32_t>(cards);
    std::vector<serve::Ticket> tickets;
    std::vector<std::uint32_t> slab_rows;
    std::uint32_t row0 = 0;
    for (int card = 0; card < cards; ++card) {
      serve::Request req;
      req.problem = p;
      req.problem.height = base + (static_cast<std::uint32_t>(card) < extra ? 1 : 0);
      if (card > 0) req.problem.bc_top = p.initial;
      if (card < cards - 1) req.problem.bc_bottom = p.initial;
      req.tenant = card;
      tickets.push_back(svc.submit(req));
      slab_rows.push_back(row0);
      row0 += req.problem.height;
    }
    svc.drain();

    // Per-card kernel time from the service's span timeline (max over the
    // pool, as run_jacobi_multicard reports it).
    SimTime kernel_time = 0;
    for (const auto& e : svc.spans().events()) {
      if (e.kind == sim::TraceEventKind::kServeKernel)
        kernel_time = std::max(kernel_time, e.dur);
    }
    const double g = kernel_time > 0 ? static_cast<double>(p.total_updates()) /
                                           1e9 / to_seconds(kernel_time)
                                     : 0.0;
    if (cards == 1) base_gpts = g;

    // Accuracy cost of frozen card-boundary halos — and a check that the
    // served slabs reproduce the split CPU reference bit for bit.
    const auto split = cpu::jacobi_reference_bf16_cards(p, cards);
    float max_err = 0.0f;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      max_err = std::max(max_err, std::fabs(static_cast<float>(whole[i]) -
                                            static_cast<float>(split[i])));
    }
    bool exact = true;
    for (int card = 0; card < cards; ++card) {
      const auto& r = svc.result(tickets[static_cast<std::size_t>(card)].id);
      if (r.status != serve::RequestStatus::kCompleted) {
        std::printf("card %d failed: %s\n", card, r.error.c_str());
        return 1;
      }
      const std::size_t off =
          static_cast<std::size_t>(slab_rows[static_cast<std::size_t>(card)]) *
          p.width;
      for (std::size_t i = 0; i < r.solution.size(); ++i) {
        if (r.solution[i] != static_cast<float>(split[off + i])) exact = false;
      }
    }
    const double joules = energy_model.joules_multicard(
        kernel_time, cfg.run.cores_x * cfg.run.cores_y, cards);
    std::printf("%6d %14.3f %9.2fx %12.1f %18.4f %10s\n", cards, g, g / base_gpts,
                joules, static_cast<double>(max_err), exact ? "yes" : "NO");
  }
  std::printf(
      "\nPerformance scales near-linearly with cards, but the frozen halos\n"
      "distort the solution near each cut (paper: \"strictly speaking this\n"
      "will not provide the correct answer\"); the interconnected Wormhole\n"
      "removes that compromise.\n");
  return 0;
}
