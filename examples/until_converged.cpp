/// \file until_converged.cpp
/// Convergence-driven solving: instead of the paper's fixed iteration count,
/// let the device track its own residual (max |unew - u| reduced on the
/// FPU) and stop once the field is stationary to a tolerance. Shows the
/// residual trajectory and the cost of checking.
///
///   $ ./examples/until_converged [tolerance]

#include <cstdio>
#include <cstdlib>

#include "ttsim/core/jacobi_device.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;

  const double tolerance = argc > 1 ? std::atof(argv[1]) : 2e-3;

  core::JacobiProblem p;
  p.width = 1024;  // device-side residuals need full FPU chunks
  p.height = 128;
  p.iterations = 20000;  // safety cap
  p.bc_left = 1.0f;
  p.bc_right = 0.0f;
  p.bc_top = 0.5f;
  p.bc_bottom = 0.5f;

  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  std::printf("solving %ux%u until max|unew-u| <= %g (checked on the device)\n\n",
              p.width, p.height, tolerance);
  std::printf("%12s %16s %14s\n", "check every", "iterations run", "residual");
  for (int check_every : {25, 100, 400}) {
    core::AdaptiveOptions opt;
    opt.tolerance = tolerance;
    opt.check_every = check_every;
    const auto r = core::run_jacobi_adaptive(p, opt, cfg);
    std::printf("%12d %16d %14.5f %s\n", check_every, r.iterations_run,
                r.final_residual, r.converged ? "(converged)" : "(hit the cap!)");
  }
  std::printf(
      "\nCoarser checking overshoots the stopping point but relaunches less;\n"
      "the residual itself costs one extra FPU subtract/abs/reduce per chunk\n"
      "on checking sweeps plus a 2-byte DRAM write per core.\n");
  return 0;
}
