/// \file advection.cpp
/// Atmospheric-style advection on the simulated Grayskull — the workload
/// the paper names as its next target ("we are now looking at more complex
/// stencil algorithms, such as atmospheric advection, on the Grayskull").
/// A Gaussian pollutant plume is transported diagonally by a first-order
/// upwind scheme; the run is verified bit-exactly against the BF16 CPU
/// reference and the plume is rendered as it crosses the domain.
///
///   $ ./examples/advection

#include <cmath>
#include <cstdio>

#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

int main() {
  using namespace ttsim;

  constexpr std::uint32_t kW = 128, kH = 64;
  // Wind towards +x/+y with Courant numbers cx + cy <= 1 (stable).
  const float cx = 0.45f, cy = 0.25f;

  core::StencilProblem p;
  p.width = kW;
  p.height = kH;
  p.stencil = core::WeightedStencil::advection_upwind(cx, cy);
  p.initial_field.assign(kW * kH, 0.0f);
  // Gaussian plume released near the inflow corner.
  const float x0 = 20.0f, y0 = 12.0f, sigma = 4.0f;
  for (std::uint32_t r = 0; r < kH; ++r) {
    for (std::uint32_t c = 0; c < kW; ++c) {
      const float dx = static_cast<float>(c) - x0, dy = static_cast<float>(r) - y0;
      p.initial_field[r * kW + c] = std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
    }
  }

  std::printf("upwind advection of a plume, %ux%u cells, wind (cx, cy) = (%.2f, %.2f)\n\n",
              kW, kH, static_cast<double>(cx), static_cast<double>(cy));

  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  const char* shades = " .:-=+*#%@";
  for (int steps : {0, 40, 80, 120}) {
    p.iterations = std::max(1, steps);
    std::vector<float> field;
    double gpts = 0.0;
    bool exact = true;
    if (steps == 0) {
      field = p.initial_field;
    } else {
      const auto r = core::run_stencil_on_device(p, cfg);
      field = r.solution;
      gpts = r.gpts(p.geometry(), /*kernel_only=*/true);
      const auto ref = cpu::stencil_reference_bf16(p);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (static_cast<float>(ref[i]) != field[i]) exact = false;
      }
    }
    // Plume diagnostics: total mass and centroid.
    double mass = 0, mx = 0, my = 0, peak = 0;
    for (std::uint32_t r = 0; r < kH; ++r) {
      for (std::uint32_t c = 0; c < kW; ++c) {
        const double v = field[r * kW + c];
        mass += v;
        mx += v * c;
        my += v * r;
        peak = std::max(peak, v);
      }
    }
    std::printf("t=%3d: centroid (%.1f, %.1f), peak %.2f, mass %.1f", steps,
                mass > 0 ? mx / mass : 0, mass > 0 ? my / mass : 0, peak, mass);
    if (steps > 0) {
      std::printf(", device %.3f GPt/s, %s", gpts,
                  exact ? "bit-exact vs reference" : "MISMATCH");
    }
    std::printf("\n");
    for (std::uint32_t r = 0; r < kH; r += 4) {
      for (std::uint32_t c = 0; c < kW; c += 2) {
        const int idx = std::min(
            9, std::max(0, static_cast<int>(field[r * kW + c] * 9.99f)));
        std::putchar(shades[idx]);
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  }
  std::printf("the upwind scheme transports the plume with the wind and\n"
              "(numerically) diffuses it — the expected first-order behaviour.\n");
  return 0;
}
