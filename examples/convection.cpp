/// \file convection.cpp
/// 9-point convection-diffusion via the generic stencil frontend: upwind
/// transport plus the isotropic 9-point Laplacian — the diagonal-tap stress
/// case the legacy 5-point `WeightedStencil` cannot express. A hot square
/// is carried towards +x/+y while diffusion rounds it off; every run is
/// verified bit-exactly against the BF16 CPU reference.
///
///   $ ./examples/convection

#include <algorithm>
#include <cstdio>

#include "ttsim/core/gallery.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

int main() {
  using namespace ttsim;

  constexpr std::uint32_t kW = 128, kH = 64;
  core::DeviceRunConfig cfg;
  cfg.cores_y = 4;

  std::printf("convection-diffusion: %ux%u cells, drift (+x, +y) with "
              "9-point diffusion\n\n", kW, kH);

  const char* shades = " .:-=+*#%@";
  for (int steps : {10, 60, 120}) {
    auto p = core::gallery::convection(kW, kH, steps);
    const auto r = core::run_general_stencil_on_device(p, cfg);

    const auto ref = cpu::general_reference_bf16(p);
    const auto& sref = ref[static_cast<std::size_t>(p.primary_field())];
    bool exact = true;
    for (std::size_t i = 0; i < sref.size(); ++i) {
      if (static_cast<float>(sref[i]) != r.solution[i]) exact = false;
    }

    double mass = 0, mx = 0, my = 0;
    float peak = 0.0f;
    for (std::uint32_t row = 0; row < kH; ++row) {
      for (std::uint32_t col = 0; col < kW; ++col) {
        const float v = r.solution[row * kW + col];
        mass += v;
        mx += static_cast<double>(v) * col;
        my += static_cast<double>(v) * row;
        peak = std::max(peak, v);
      }
    }
    std::printf("t=%3d: centroid (%.1f, %.1f), peak %.3f, %s\n", steps,
                mass > 0 ? mx / mass : 0, mass > 0 ? my / mass : 0,
                static_cast<double>(peak),
                exact ? "bit-exact vs reference" : "MISMATCH");
    for (std::uint32_t row = 0; row < kH; row += 4) {
      for (std::uint32_t col = 0; col < kW; col += 2) {
        const float v = peak > 0 ? r.solution[row * kW + col] / peak : 0.0f;
        std::putchar(shades[std::min(9, static_cast<int>(v * 9.99f))]);
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  }
  return 0;
}
