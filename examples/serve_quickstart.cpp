/// \file serve_quickstart.cpp
/// Smallest useful tour of the serving layer: two tenants share one
/// simulated e150 through a StencilService. Their same-shape requests
/// coalesce into a single batched launch (disjoint core groups, one program
/// dispatch), and the service reports per-request simulated latency plus
/// aggregate metrics.
///
///   $ ./examples/serve_quickstart

#include <cstdio>

#include "ttsim/serve/serve.hpp"

int main() {
  using namespace ttsim;

  serve::ServiceConfig cfg;
  cfg.cards = 1;
  cfg.run.strategy = core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;  // 4 cores per request slot; 108 workers -> up to 27 slots
  cfg.max_batch = 8;
  serve::StencilService svc(cfg);

  // Two tenants, same 256x256 shape, different physics. Shape — not boundary
  // values — keys the batch, so these ride in one launch with independent data.
  serve::Request hot;
  hot.problem.width = 256;
  hot.problem.height = 256;
  hot.problem.iterations = 50;
  hot.problem.bc_left = 1.0f;
  hot.tenant = 0;

  serve::Request cold = hot;
  cold.problem.bc_left = -1.0f;
  cold.tenant = 1;

  const serve::Ticket ta = svc.submit(hot);
  const serve::Ticket tb = svc.submit(cold);
  svc.drain();

  for (const serve::Ticket& t : {ta, tb}) {
    const serve::RequestResult& r = svc.result(t.id);
    std::printf("tenant %d: %s on card %d, batch of %d, latency %.1f us, "
                "center value %.4f\n",
                r.tenant,
                r.status == serve::RequestStatus::kCompleted ? "completed" : "failed",
                r.card, r.batch_size, to_seconds(r.latency) * 1e6,
                static_cast<double>(r.solution[r.solution.size() / 2]));
  }

  const serve::ServiceMetrics& m = svc.metrics();
  std::printf("\nbatches %llu (requests batched %llu), session cache %llu miss / "
              "%llu hit, p50 %.1f us, p99 %.1f us\n",
              static_cast<unsigned long long>(m.batches),
              static_cast<unsigned long long>(m.batched_requests),
              static_cast<unsigned long long>(m.session_cache_misses),
              static_cast<unsigned long long>(m.session_cache_hits),
              to_seconds(m.p50()) * 1e6, to_seconds(m.p99()) * 1e6);
  std::printf("span timeline: %zu events across %zu tracks (svc.spans())\n",
              svc.spans().size(), svc.spans().track_count());
  return 0;
}
